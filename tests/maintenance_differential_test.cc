// End-to-end differential check of incremental index maintenance
// (DESIGN.md §E8, "incremental ≡ batch"): drive a randomized mixed
// insert/delete/add-node stream through incIdx on one graph while
// mirroring every mutation onto a twin graph, and periodically assert
// that the incrementally maintained index answers a generated query
// workload *identically* to an index batch-rebuilt from scratch over the
// twin.  The index is defined by what it answers, so query equivalence —
// not structural equality — is the correctness contract (incIdx may
// legally settle on a finer-but-stable partition).  Labeled `slow`.

#include <cstddef>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/filtering.h"
#include "core/index_maintenance.h"
#include "core/kmatch.h"
#include "core/ontology_index.h"
#include "gen/query_gen.h"
#include "gen/scenarios.h"
#include "graph/graph.h"

namespace osq {
namespace {

std::vector<Graph> MakeWorkload(const gen::Dataset& ds, size_t count,
                                uint64_t seed) {
  Rng rng(seed);
  gen::QueryGenParams qp;
  qp.num_nodes = 4;
  qp.generalize_prob = 0.5;
  std::vector<Graph> queries;
  size_t attempts = 0;
  while (queries.size() < count && ++attempts < count * 20) {
    Graph q = gen::ExtractQuery(ds.graph, ds.ontology, qp, &rng);
    if (!q.empty()) queries.push_back(std::move(q));
  }
  return queries;
}

std::vector<LabelId> EdgeLabelUniverse(const Graph& g) {
  std::set<LabelId> labels;
  for (const EdgeTriple& e : g.EdgeList()) labels.insert(e.label);
  return {labels.begin(), labels.end()};
}

// Runs one seeded stream: `steps` random updates applied incrementally to
// (graph, index) and mirrored onto `twin`; every `check_every` steps the
// full workload is answered by both the maintained index and a batch
// rebuild and compared match-for-match.
void RunStream(uint64_t scenario_seed, uint64_t stream_seed) {
  gen::ScenarioParams p;
  p.scale = 400;
  p.seed = scenario_seed;
  gen::Dataset ds = gen::MakeCrossDomainLike(p);
  Graph twin = ds.graph;

  IndexOptions idx;
  idx.num_concept_graphs = 2;
  OntologyIndex inc = OntologyIndex::Build(ds.graph, ds.ontology, idx);
  ASSERT_TRUE(inc.Validate());

  std::vector<Graph> queries = MakeWorkload(ds, 4, stream_seed + 1);
  ASSERT_FALSE(queries.empty());

  QueryOptions options;
  options.theta = 0.85;
  options.k = 8;

  constexpr size_t kSteps = 60;
  constexpr size_t kCheckEvery = 20;
  Rng rng(stream_seed);
  std::vector<LabelId> labels = EdgeLabelUniverse(ds.graph);
  ASSERT_FALSE(labels.empty());

  size_t applied = 0;
  for (size_t step = 1; step <= kSteps; ++step) {
    if (step % 17 == 0) {
      // Occasionally grow the node set; new nodes join later edge updates.
      LabelId label = ds.graph.NodeLabel(
          static_cast<NodeId>(rng.Index(ds.graph.num_nodes())));
      NodeId inc_id = AddNodeWithIndex(&ds.graph, &inc, label);
      NodeId twin_id = twin.AddNode(label);
      ASSERT_EQ(inc_id, twin_id);
      continue;
    }
    GraphUpdate update;
    if (rng.Bernoulli(0.5) && ds.graph.num_edges() > 0) {
      // Delete an existing edge (uniform over the current edge list).
      std::vector<EdgeTriple> edges = ds.graph.EdgeList();
      EdgeTriple e = edges[rng.Index(edges.size())];
      update = GraphUpdate::Delete(e.from, e.to, e.label);
    } else {
      NodeId u = static_cast<NodeId>(rng.Index(ds.graph.num_nodes()));
      NodeId v = static_cast<NodeId>(rng.Index(ds.graph.num_nodes()));
      if (u == v) continue;
      update = GraphUpdate::Insert(u, v, labels[rng.Index(labels.size())]);
    }
    bool inc_applied = ApplyUpdate(&ds.graph, &inc, update);
    bool twin_applied =
        update.kind == GraphUpdate::Kind::kInsertEdge
            ? twin.AddEdge(update.edge.from, update.edge.to,
                           update.edge.label)
            : twin.RemoveEdge(update.edge.from, update.edge.to,
                              update.edge.label);
    ASSERT_EQ(inc_applied, twin_applied) << "step " << step;
    if (inc_applied) ++applied;

    if (step % kCheckEvery != 0 && step != kSteps) continue;
    ASSERT_TRUE(inc.Validate()) << "step " << step;
    ASSERT_TRUE(ds.graph.CheckConsistency()) << "step " << step;
    OntologyIndex batch = OntologyIndex::Build(twin, ds.ontology, idx);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      FilterResult inc_filter = GviewFilter(inc, queries[qi], options);
      FilterResult batch_filter = GviewFilter(batch, queries[qi], options);
      std::vector<Match> inc_matches =
          KMatch(queries[qi], inc_filter, options);
      std::vector<Match> batch_matches =
          KMatch(queries[qi], batch_filter, options);
      ASSERT_EQ(inc_matches, batch_matches)
          << "seed " << scenario_seed << "/" << stream_seed << " step "
          << step << " query " << qi;
    }
  }
  // The stream must have actually exercised the maintenance path.
  ASSERT_GT(applied, kSteps / 4);
}

TEST(MaintenanceDifferentialTest, RandomStreamSeedA) { RunStream(11, 101); }

TEST(MaintenanceDifferentialTest, RandomStreamSeedB) { RunStream(23, 202); }

TEST(MaintenanceDifferentialTest, RandomStreamSeedC) { RunStream(37, 303); }

}  // namespace
}  // namespace osq
