#include "ontology/similarity.h"

#include <cmath>

#include <gtest/gtest.h>
#include "test_util.h"

namespace osq {
namespace {

TEST(SimilarityTest, SimAtDistanceMatchesPowers) {
  SimilarityFunction sim(0.9);
  EXPECT_DOUBLE_EQ(sim.SimAtDistance(0), 1.0);
  EXPECT_DOUBLE_EQ(sim.SimAtDistance(1), 0.9);
  EXPECT_DOUBLE_EQ(sim.SimAtDistance(2), 0.81);
  EXPECT_NEAR(sim.SimAtDistance(3), 0.729, 1e-12);
}

TEST(SimilarityTest, SimOfUnreachableIsZero) {
  SimilarityFunction sim(0.9);
  EXPECT_DOUBLE_EQ(sim.SimAtDistance(kInfiniteDistance), 0.0);
}

TEST(SimilarityTest, SimBeyondTableStillComputed) {
  SimilarityFunction sim(0.9);
  EXPECT_NEAR(sim.SimAtDistance(SimilarityFunction::kMaxRadius + 3),
              std::pow(0.9, SimilarityFunction::kMaxRadius + 3.0), 1e-15);
}

TEST(SimilarityTest, MonotonicallyDecreasing) {
  SimilarityFunction sim(0.9);
  for (uint32_t d = 0; d < 20; ++d) {
    EXPECT_GT(sim.SimAtDistance(d), sim.SimAtDistance(d + 1));
  }
}

TEST(SimilarityTest, RadiusInvertsSim) {
  SimilarityFunction sim(0.9);
  EXPECT_EQ(sim.Radius(1.0), 0u);
  EXPECT_EQ(sim.Radius(0.95), 0u);
  EXPECT_EQ(sim.Radius(0.9), 1u);    // exactly one hop
  EXPECT_EQ(sim.Radius(0.85), 1u);
  EXPECT_EQ(sim.Radius(0.81), 2u);   // exactly two hops
  EXPECT_EQ(sim.Radius(0.8), 2u);
  EXPECT_EQ(sim.Radius(0.729), 3u);
}

TEST(SimilarityTest, RadiusAboveOneIsZero) {
  SimilarityFunction sim(0.9);
  EXPECT_EQ(sim.Radius(1.5), 0u);
}

TEST(SimilarityTest, RadiusNonPositiveThetaCapped) {
  SimilarityFunction sim(0.9);
  EXPECT_EQ(sim.Radius(0.0), SimilarityFunction::kMaxRadius);
  EXPECT_EQ(sim.Radius(-1.0), SimilarityFunction::kMaxRadius);
}

TEST(SimilarityTest, RadiusConsistentWithSim) {
  // For a sweep of thetas: sim(Radius(theta)) >= theta > sim(Radius+1).
  SimilarityFunction sim(0.85);
  for (double theta : {0.99, 0.9, 0.8, 0.7, 0.5, 0.3, 0.1}) {
    uint32_t r = sim.Radius(theta);
    EXPECT_GE(sim.SimAtDistance(r) + 1e-9, theta) << theta;
    EXPECT_LT(sim.SimAtDistance(r + 1), theta) << theta;
  }
}

TEST(SimilarityTest, OtherBases) {
  SimilarityFunction half(0.5);
  EXPECT_EQ(half.Radius(0.5), 1u);
  EXPECT_EQ(half.Radius(0.25), 2u);
  EXPECT_EQ(half.Radius(0.26), 1u);
}

TEST(SimilarityTest, SimilarityThroughOntology) {
  test::TravelFixture f = test::MakeTravelFixture();
  SimilarityFunction sim(0.9);
  LabelId museum = f.dict.Lookup("museum");
  LabelId rg = f.dict.Lookup("royal_gallery");
  LabelId disney = f.dict.Lookup("disneyland");
  // Paper Example II.1: sim(museum, Disneyland) = 0.9^2 = 0.81.
  EXPECT_DOUBLE_EQ(sim.Similarity(f.o, museum, disney, 0.5), 0.81);
  EXPECT_DOUBLE_EQ(sim.Similarity(f.o, museum, rg, 0.5), 0.9);
}

TEST(SimilarityTest, SimilaritySymmetric) {
  test::TravelFixture f = test::MakeTravelFixture();
  SimilarityFunction sim(0.9);
  LabelId museum = f.dict.Lookup("museum");
  LabelId disney = f.dict.Lookup("disneyland");
  EXPECT_DOUBLE_EQ(sim.Similarity(f.o, museum, disney, 0.5),
                   sim.Similarity(f.o, disney, museum, 0.5));
}

TEST(SimilarityTest, SimilarityBelowFloorIsZero) {
  test::TravelFixture f = test::MakeTravelFixture();
  SimilarityFunction sim(0.9);
  LabelId museum = f.dict.Lookup("museum");
  LabelId disney = f.dict.Lookup("disneyland");
  // Floor 0.9 -> radius 1, but disneyland is 2 hops away.
  EXPECT_DOUBLE_EQ(sim.Similarity(f.o, museum, disney, 0.9), 0.0);
  EXPECT_FALSE(sim.AtLeast(f.o, museum, disney, 0.9));
  EXPECT_TRUE(sim.AtLeast(f.o, museum, disney, 0.81));
}

TEST(SimilarityTest, IdenticalLabelsAlwaysOne) {
  OntologyGraph o;  // empty ontology
  SimilarityFunction sim(0.9);
  EXPECT_DOUBLE_EQ(sim.Similarity(o, 7, 7, 0.9), 1.0);
}

TEST(SimilarityTest, TraditionalIsomorphismAsSpecialCase) {
  // theta == 1 admits identical labels only (paper §II-B).
  test::TravelFixture f = test::MakeTravelFixture();
  SimilarityFunction sim(0.9);
  LabelId museum = f.dict.Lookup("museum");
  LabelId rg = f.dict.Lookup("royal_gallery");
  EXPECT_TRUE(sim.AtLeast(f.o, museum, museum, 1.0));
  EXPECT_FALSE(sim.AtLeast(f.o, museum, rg, 1.0));
}


TEST(SimilarityModelTest, LinearSimAndRadius) {
  SimilarityFunction sim = SimilarityFunction::Linear(/*cutoff=*/2);
  EXPECT_EQ(sim.model(), SimilarityModel::kLinear);
  EXPECT_DOUBLE_EQ(sim.SimAtDistance(0), 1.0);
  EXPECT_NEAR(sim.SimAtDistance(1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(sim.SimAtDistance(2), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(sim.SimAtDistance(3), 0.0);
  EXPECT_DOUBLE_EQ(sim.SimAtDistance(100), 0.0);
  EXPECT_EQ(sim.Radius(1.0), 0u);
  EXPECT_EQ(sim.Radius(0.67), 0u);
  EXPECT_EQ(sim.Radius(2.0 / 3.0), 1u);
  EXPECT_EQ(sim.Radius(0.34), 1u);
  EXPECT_EQ(sim.Radius(1.0 / 3.0), 2u);
  EXPECT_EQ(sim.Radius(0.01), 2u);   // capped at the cutoff
  EXPECT_EQ(sim.Radius(0.0), 2u);
}

TEST(SimilarityModelTest, ReciprocalSimAndRadius) {
  SimilarityFunction sim = SimilarityFunction::Reciprocal();
  EXPECT_EQ(sim.model(), SimilarityModel::kReciprocal);
  EXPECT_DOUBLE_EQ(sim.SimAtDistance(0), 1.0);
  EXPECT_DOUBLE_EQ(sim.SimAtDistance(1), 0.5);
  EXPECT_DOUBLE_EQ(sim.SimAtDistance(3), 0.25);
  EXPECT_EQ(sim.Radius(1.0), 0u);
  EXPECT_EQ(sim.Radius(0.5), 1u);
  EXPECT_EQ(sim.Radius(0.4), 1u);
  EXPECT_EQ(sim.Radius(0.25), 3u);
  EXPECT_EQ(sim.Radius(0.0), SimilarityFunction::kMaxRadius);
}

// Radius must invert SimAtDistance for every model (the property every
// engine phase relies on).
class ModelRadiusTest : public ::testing::TestWithParam<int> {};

TEST_P(ModelRadiusTest, RadiusConsistentWithSim) {
  SimilarityFunction sim =
      GetParam() == 0   ? SimilarityFunction::Exponential(0.9)
      : GetParam() == 1 ? SimilarityFunction::Linear(4)
                        : SimilarityFunction::Reciprocal();
  for (double theta : {0.99, 0.9, 0.8, 0.6, 0.4, 0.21, 0.11}) {
    uint32_t r = sim.Radius(theta);
    EXPECT_GE(sim.SimAtDistance(r) + 1e-9, theta) << theta;
    EXPECT_LT(sim.SimAtDistance(r + 1), theta) << theta;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelRadiusTest,
                         ::testing::Values(0, 1, 2));

TEST(SimilarityModelTest, OntologySimilarityUnderLinearModel) {
  test::TravelFixture f = test::MakeTravelFixture();
  SimilarityFunction sim = SimilarityFunction::Linear(3);
  LabelId museum = f.dict.Lookup("museum");
  LabelId rg = f.dict.Lookup("royal_gallery");
  LabelId disney = f.dict.Lookup("disneyland");
  EXPECT_DOUBLE_EQ(sim.Similarity(f.o, museum, rg, 0.1), 0.75);
  EXPECT_DOUBLE_EQ(sim.Similarity(f.o, museum, disney, 0.1), 0.5);
}

}  // namespace
}  // namespace osq
