// Fast tests for the deadline / cancellation primitives (common/deadline.h)
// and their plumbing through QueryEngine and QueryService: the completeness
// contract (interrupted evaluations return valid matches flagged with a
// StopReason), default deadlines, and the partial-results-never-cached
// rule.  Timing-heavy and concurrency-heavy coverage lives in
// deadline_stress_test.cc (ctest label `slow`).

#include "common/deadline.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/query_engine.h"
#include "serve/query_service.h"
#include "test_util.h"

namespace osq {
namespace {

TEST(DeadlineTest, DefaultHasNoDeadline) {
  Deadline d;
  EXPECT_FALSE(d.has_deadline());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMillis(), 1e12);
}

TEST(DeadlineTest, NonPositiveMillisMeansNoDeadline) {
  EXPECT_FALSE(Deadline::AfterMillis(0.0).has_deadline());
  EXPECT_FALSE(Deadline::AfterMillis(-5.0).has_deadline());
}

TEST(DeadlineTest, ExpiresAfterItsBudget) {
  Deadline d = Deadline::AfterMillis(0.5);
  EXPECT_TRUE(d.has_deadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(d.Expired());
  EXPECT_LE(d.RemainingMillis(), 0.0);
}

TEST(DeadlineTest, FarDeadlineNotExpired) {
  Deadline d = Deadline::AfterMillis(60'000.0);
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMillis(), 1000.0);
}

TEST(CancelTokenTest, DefaultTokenIsInert) {
  CancelToken t;
  EXPECT_FALSE(t.cancellable());
  EXPECT_FALSE(t.Cancelled());
  t.RequestCancel();  // no-op, must not crash
  EXPECT_FALSE(t.Cancelled());
}

TEST(CancelTokenTest, CancellableTokenFiresAndCopiesShareTheFlag) {
  CancelToken t = CancelToken::Cancellable();
  CancelToken copy = t;
  EXPECT_TRUE(t.cancellable());
  EXPECT_FALSE(t.Cancelled());
  copy.RequestCancel();
  EXPECT_TRUE(t.Cancelled());
  EXPECT_TRUE(copy.Cancelled());
}

TEST(StopReasonTest, MergePrecedenceAndNames) {
  EXPECT_EQ(MergeStopReason(StopReason::kNone, StopReason::kNone),
            StopReason::kNone);
  EXPECT_EQ(
      MergeStopReason(StopReason::kNone, StopReason::kDeadlineExceeded),
      StopReason::kDeadlineExceeded);
  EXPECT_EQ(
      MergeStopReason(StopReason::kCancelled, StopReason::kDeadlineExceeded),
      StopReason::kCancelled);
  EXPECT_STREQ(StopReasonName(StopReason::kNone), "complete");
  EXPECT_STREQ(StopReasonName(StopReason::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(StopReasonName(StopReason::kCancelled), "cancelled");
}

TEST(ExecControlTest, CheckReportsCancelOverDeadline) {
  ExecControl exec;
  EXPECT_FALSE(exec.CanStop());
  EXPECT_EQ(exec.Check(), StopReason::kNone);

  exec.deadline = Deadline::AfterMillis(0.01);
  exec.cancel = CancelToken::Cancellable();
  EXPECT_TRUE(exec.CanStop());
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(exec.Check(), StopReason::kDeadlineExceeded);
  exec.cancel.RequestCancel();
  EXPECT_EQ(exec.Check(), StopReason::kCancelled);
}

TEST(CancelCheckTest, NullOrInertControlNeverStops) {
  CancelCheck null_check(nullptr);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(null_check.Stop());

  ExecControl inert;  // no deadline, inert token
  CancelCheck inert_check(&inert);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(inert_check.Stop());
  EXPECT_FALSE(inert_check.StopNow());
  EXPECT_EQ(inert_check.reason(), StopReason::kNone);
}

TEST(CancelCheckTest, PollsAtStrideAndLatches) {
  ExecControl exec;
  exec.cancel = CancelToken::Cancellable();
  exec.cancel.RequestCancel();

  CancelCheck check(&exec, /*stride=*/4);
  // The flag is already up, but the first three calls are amortized away.
  EXPECT_FALSE(check.Stop());
  EXPECT_FALSE(check.Stop());
  EXPECT_FALSE(check.Stop());
  EXPECT_TRUE(check.Stop());  // 4th call polls the token
  EXPECT_EQ(check.reason(), StopReason::kCancelled);
  // Latched: every further call is a single branch returning true.
  EXPECT_TRUE(check.Stop());
  EXPECT_TRUE(check.StopNow());
}

TEST(CancelCheckTest, StopNowBypassesTheStride) {
  ExecControl exec;
  exec.cancel = CancelToken::Cancellable();
  exec.cancel.RequestCancel();
  CancelCheck check(&exec);
  EXPECT_TRUE(check.StopNow());
  EXPECT_EQ(check.reason(), StopReason::kCancelled);
}

// ---- engine-level completeness contract --------------------------------

// A small "explosive" instance: a complete digraph over n same-labeled
// nodes, queried with a same-labeled triangle under k = 0 ("all matches"),
// enumerates every injective node triple — enough work that the stride-256
// poll is guaranteed to fire.
struct CliqueFixture {
  LabelDictionary dict;
  Graph g;
  OntologyGraph o;
  Graph query;
};

CliqueFixture MakeCliqueFixture(size_t n) {
  CliqueFixture f;
  LabelId x = f.dict.Intern("x");
  LabelId e = f.dict.Intern("e");
  f.o.AddLabel(x);
  for (size_t v = 0; v < n; ++v) f.g.AddNode(x);
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      if (a != b) f.g.AddEdge(static_cast<NodeId>(a),
                              static_cast<NodeId>(b), e);
    }
  }
  f.query.AddNode(x);
  f.query.AddNode(x);
  f.query.AddNode(x);
  f.query.AddEdge(0, 1, e);
  f.query.AddEdge(1, 2, e);
  f.query.AddEdge(2, 0, e);
  return f;
}

QueryOptions CliqueOptions() {
  QueryOptions options;
  options.theta = 0.5;
  options.k = 0;  // all matches: no top-K score pruning to cut the search
  options.semantics = MatchSemantics::kHomomorphicEdges;
  return options;
}

TEST(EngineCompletenessTest, UnconstrainedQueryIsComplete) {
  test::TravelFixture f = test::MakeTravelFixture();
  QueryEngine engine(std::move(f.g), std::move(f.o), IndexOptions{});
  QueryOptions options;
  options.theta = 0.9;
  QueryResult r = engine.Query(f.query, options);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.completeness, StopReason::kNone);
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.verify_stats.stopped, StopReason::kNone);
}

TEST(EngineCompletenessTest, PreCancelledQueryReturnsCancelledSubset) {
  CliqueFixture f = MakeCliqueFixture(12);
  QueryEngine engine(std::move(f.g), std::move(f.o), IndexOptions{});

  QueryOptions options = CliqueOptions();
  QueryResult full = engine.Query(f.query, options);
  ASSERT_TRUE(full.status.ok());
  ASSERT_EQ(full.matches.size(), 12u * 11u * 10u);

  options.cancel = CancelToken::Cancellable();
  options.cancel.RequestCancel();
  QueryResult partial = engine.Query(f.query, options);
  ASSERT_TRUE(partial.status.ok());
  EXPECT_EQ(partial.completeness, StopReason::kCancelled);
  EXPECT_FALSE(partial.complete());
  EXPECT_LT(partial.matches.size(), full.matches.size());

  // Every match an interrupted run returns must appear in the exact
  // answer — interruption truncates, never corrupts.
  std::set<std::vector<NodeId>> exact;
  for (const Match& m : full.matches) exact.insert(m.mapping);
  for (const Match& m : partial.matches) {
    EXPECT_TRUE(exact.count(m.mapping)) << "invalid match in partial result";
  }
}

TEST(EngineCompletenessTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  CliqueFixture f = MakeCliqueFixture(12);
  QueryEngine engine(std::move(f.g), std::move(f.o), IndexOptions{});
  QueryOptions options = CliqueOptions();
  // An already-expired deadline: the evaluation must notice at the first
  // stride poll and unwind with whatever it has.
  options.deadline_ms = 1e-6;
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  QueryResult r = engine.Query(f.query, options);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.completeness, StopReason::kDeadlineExceeded);
  EXPECT_FALSE(r.complete());
  EXPECT_LT(r.matches.size(), 12u * 11u * 10u);
}

// ---- service-level plumbing --------------------------------------------

TEST(ServiceDeadlineTest, DefaultDeadlineAppliesAndPartialIsNotCached) {
  CliqueFixture f = MakeCliqueFixture(12);
  ServeOptions serve;
  serve.default_deadline_ms = 1e-6;  // effectively pre-expired
  QueryService service(
      QueryEngine(std::move(f.g), std::move(f.o), IndexOptions{}), serve);

  ServedResult first = service.Query(f.query, CliqueOptions());
  ASSERT_TRUE(first.result.status.ok());
  EXPECT_EQ(first.result.completeness, StopReason::kDeadlineExceeded);
  EXPECT_FALSE(first.cache_hit);
  // The partial result must not have been cached as a complete answer.
  EXPECT_EQ(service.cache_size(), 0u);
  ServedResult second = service.Query(f.query, CliqueOptions());
  EXPECT_FALSE(second.cache_hit);

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.deadline_exceeded, 2u);
  EXPECT_EQ(stats.complete, 0u);
  EXPECT_EQ(stats.degraded_latency.count, 2u);
  EXPECT_EQ(stats.miss_latency.count, 0u);
}

TEST(ServiceDeadlineTest, PerQueryDeadlineBeatsTheDefault) {
  CliqueFixture f = MakeCliqueFixture(12);
  ServeOptions serve;
  serve.default_deadline_ms = 1e-6;
  QueryService service(
      QueryEngine(std::move(f.g), std::move(f.o), IndexOptions{}), serve);

  // A generous per-query deadline overrides the tiny default: complete.
  QueryOptions options = CliqueOptions();
  options.deadline_ms = 60'000.0;
  ServedResult served = service.Query(f.query, options);
  ASSERT_TRUE(served.result.status.ok());
  EXPECT_TRUE(served.result.complete());
  EXPECT_EQ(served.result.matches.size(), 12u * 11u * 10u);
  // Complete results are cacheable as usual.
  EXPECT_EQ(service.cache_size(), 1u);
  EXPECT_TRUE(service.Query(f.query, options).cache_hit);
}

TEST(ServiceDeadlineTest, CancelledServiceQueryCountsAsCancelled) {
  CliqueFixture f = MakeCliqueFixture(12);
  QueryService service(
      QueryEngine(std::move(f.g), std::move(f.o), IndexOptions{}),
      ServeOptions{});
  QueryOptions options = CliqueOptions();
  options.cancel = CancelToken::Cancellable();
  options.cancel.RequestCancel();
  ServedResult served = service.Query(f.query, options);
  ASSERT_TRUE(served.result.status.ok());
  EXPECT_EQ(served.result.completeness, StopReason::kCancelled);
  EXPECT_EQ(service.cache_size(), 0u);
  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(service.inflight(), 0u);
}

}  // namespace
}  // namespace osq
