#include "core/kmatch.h"

#include <gtest/gtest.h>
#include "core/ontology_index.h"
#include "test_util.h"

namespace osq {
namespace {

OntologyIndex BuildTravelIndex(const test::TravelFixture& f) {
  IndexOptions options;
  options.beta = 0.81;
  options.num_concept_graphs = 2;
  return OntologyIndex::Build(f.g, f.o, options);
}

// Paper Example II.2: the best match maps museum->RG, tourists->CT,
// moonlight->starlight with score 0.9 * 3 = 2.7.
TEST(KMatchTest, TravelExampleTopMatch) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = BuildTravelIndex(f);
  QueryOptions options;
  options.theta = 0.9;
  options.k = 10;
  FilterResult filter = GviewFilter(index, f.query, options);
  KMatchStats stats;
  std::vector<Match> matches = KMatch(f.query, filter, options, &stats);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_DOUBLE_EQ(matches[0].score, 2.7);
  EXPECT_EQ(matches[0].mapping[f.q_museum], f.rg);
  EXPECT_EQ(matches[0].mapping[f.q_tourists], f.ct);
  EXPECT_EQ(matches[0].mapping[f.q_moonlight], f.starlight);
  EXPECT_EQ(stats.matches_found, 1u);
}

TEST(KMatchTest, LowerThetaFindsSecondMatchRankedLower) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = BuildTravelIndex(f);
  QueryOptions options;
  options.theta = 0.81;
  options.k = 10;
  FilterResult filter = GviewFilter(index, f.query, options);
  std::vector<Match> matches = KMatch(f.query, filter, options);
  ASSERT_EQ(matches.size(), 2u);
  // G' (score 2.7) beats G'' = {Disneyland, HT, HC} (score 2.61).
  EXPECT_DOUBLE_EQ(matches[0].score, 2.7);
  EXPECT_NEAR(matches[1].score, 2.61, 1e-12);
  EXPECT_EQ(matches[1].mapping[f.q_museum], f.disneyland);
  EXPECT_EQ(matches[1].mapping[f.q_tourists], f.ht);
  EXPECT_EQ(matches[1].mapping[f.q_moonlight], f.hc);
}

TEST(KMatchTest, KLimitsResults) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = BuildTravelIndex(f);
  QueryOptions options;
  options.theta = 0.81;
  options.k = 1;
  FilterResult filter = GviewFilter(index, f.query, options);
  std::vector<Match> matches = KMatch(f.query, filter, options);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_DOUBLE_EQ(matches[0].score, 2.7);
}

TEST(KMatchTest, KZeroReturnsAll) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = BuildTravelIndex(f);
  QueryOptions options;
  options.theta = 0.81;
  options.k = 0;
  FilterResult filter = GviewFilter(index, f.query, options);
  EXPECT_EQ(KMatch(f.query, filter, options).size(), 2u);
}

TEST(KMatchTest, NoMatchFilterYieldsEmpty) {
  FilterResult filter;
  filter.no_match = true;
  Graph q;
  q.AddNode(0);
  EXPECT_TRUE(KMatch(q, filter, QueryOptions{}).empty());
}

TEST(KMatchTest, ThetaOneIsExactIsomorphism) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = BuildTravelIndex(f);
  // Query with exact labels of the CT triangle.
  StringGraphBuilder qb(&f.dict);
  qb.AddNode("t", "culture_tours");
  qb.AddNode("m", "royal_gallery");
  qb.AddNode("s", "starlight");
  qb.AddEdge("t", "m", "guide");
  qb.AddEdge("t", "s", "fav");
  qb.AddEdge("s", "m", "near");
  QueryOptions options;
  options.theta = 1.0;
  options.k = 10;
  FilterResult filter = GviewFilter(index, qb.graph(), options);
  std::vector<Match> matches = KMatch(qb.graph(), filter, options);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_DOUBLE_EQ(matches[0].score, 3.0);  // identical labels score |V_Q|
}

TEST(KMatchTest, InducedSemanticsRejectsExtraEdges) {
  // Target has an extra edge inside the matched node set.
  LabelDictionary dict;
  Graph target;
  LabelId a = dict.Intern("a");
  LabelId b = dict.Intern("b");
  target.AddNode(a);
  target.AddNode(b);
  target.AddEdge(0, 1, 0);
  target.AddEdge(1, 0, 0);  // extra reverse edge

  Graph query;
  query.AddNode(a);
  query.AddNode(b);
  query.AddEdge(0, 1, 0);

  std::vector<std::vector<Candidate>> cands = {{{0, 1.0}}, {{1, 1.0}}};
  QueryOptions induced;
  induced.semantics = MatchSemantics::kInduced;
  EXPECT_TRUE(KMatchOnGraph(query, target, cands, induced).empty());

  QueryOptions homomorphic;
  homomorphic.semantics = MatchSemantics::kHomomorphicEdges;
  EXPECT_EQ(KMatchOnGraph(query, target, cands, homomorphic).size(), 1u);
}

TEST(KMatchTest, EdgeLabelsMustMatch) {
  LabelDictionary dict;
  Graph target;
  target.AddNode(0);
  target.AddNode(0);
  target.AddEdge(0, 1, /*label=*/5);

  Graph query;
  query.AddNode(0);
  query.AddNode(0);
  query.AddEdge(0, 1, /*label=*/6);  // different edge label

  std::vector<std::vector<Candidate>> cands = {{{0, 1.0}, {1, 1.0}},
                                               {{0, 1.0}, {1, 1.0}}};
  EXPECT_TRUE(KMatchOnGraph(query, target, cands, QueryOptions{}).empty());
}

TEST(KMatchTest, InjectivityEnforced) {
  // Two query nodes may not map to the same data node.
  Graph target;
  target.AddNode(0);
  target.AddEdge(0, 0, 0);  // self loop

  Graph query;
  query.AddNode(0);
  query.AddNode(0);
  query.AddEdge(0, 1, 0);

  std::vector<std::vector<Candidate>> cands = {{{0, 1.0}}, {{0, 1.0}}};
  EXPECT_TRUE(KMatchOnGraph(query, target, cands, QueryOptions{}).empty());
}

TEST(KMatchTest, SelfLoopMatching) {
  Graph target;
  target.AddNode(0);
  target.AddNode(0);
  target.AddEdge(0, 0, 0);

  Graph query;
  query.AddNode(0);
  query.AddEdge(0, 0, 0);

  std::vector<std::vector<Candidate>> cands = {{{0, 1.0}, {1, 1.0}}};
  QueryOptions options;
  std::vector<Match> matches = KMatchOnGraph(query, target, cands, options);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].mapping[0], 0u);  // only node 0 has the loop
}

TEST(KMatchTest, ResultsSortedByScoreThenMapping) {
  // Star query with one center, several candidate leaves of varied sims.
  Graph target;
  target.AddNode(0);                    // center
  for (int i = 0; i < 3; ++i) target.AddNode(1);
  target.AddEdge(0, 1, 0);
  target.AddEdge(0, 2, 0);
  target.AddEdge(0, 3, 0);

  Graph query;
  query.AddNode(0);
  query.AddNode(1);
  query.AddEdge(0, 1, 0);

  std::vector<std::vector<Candidate>> cands = {
      {{0, 1.0}},
      {{1, 0.9}, {2, 0.8}, {3, 0.7}},
  };
  QueryOptions options;
  options.k = 0;
  options.semantics = MatchSemantics::kHomomorphicEdges;
  std::vector<Match> matches = KMatchOnGraph(query, target, cands, options);
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_DOUBLE_EQ(matches[0].score, 1.9);
  EXPECT_DOUBLE_EQ(matches[1].score, 1.8);
  EXPECT_DOUBLE_EQ(matches[2].score, 1.7);
}

TEST(KMatchTest, PruningDoesNotChangeTopK) {
  // With k = 1 the bound prunes aggressively; the winner must equal the
  // best of the full enumeration.
  Graph target;
  target.AddNode(0);
  for (int i = 0; i < 5; ++i) target.AddNode(1);
  for (NodeId v = 1; v <= 5; ++v) target.AddEdge(0, v, 0);

  Graph query;
  query.AddNode(0);
  query.AddNode(1);
  query.AddEdge(0, 1, 0);

  std::vector<std::vector<Candidate>> cands = {
      {{0, 1.0}},
      {{1, 0.95}, {2, 0.94}, {3, 0.93}, {4, 0.92}, {5, 0.91}},
  };
  QueryOptions all;
  all.k = 0;
  all.semantics = MatchSemantics::kHomomorphicEdges;
  QueryOptions top1 = all;
  top1.k = 1;
  std::vector<Match> full = KMatchOnGraph(query, target, cands, all);
  std::vector<Match> best = KMatchOnGraph(query, target, cands, top1);
  ASSERT_FALSE(full.empty());
  ASSERT_EQ(best.size(), 1u);
  EXPECT_DOUBLE_EQ(best[0].score, full[0].score);
  EXPECT_EQ(best[0].mapping, full[0].mapping);
}

TEST(KMatchTest, MaxSearchStepsTruncates) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = BuildTravelIndex(f);
  QueryOptions options;
  options.theta = 0.81;
  options.k = 10;
  options.max_search_steps = 1;
  FilterResult filter = GviewFilter(index, f.query, options);
  KMatchStats stats;
  (void)KMatch(f.query, filter, options, &stats);  // only stats are under test
  EXPECT_TRUE(stats.truncated);
}

TEST(KMatchTest, EmptyCandidateListYieldsNoMatch) {
  Graph target;
  target.AddNode(0);
  Graph query;
  query.AddNode(0);
  std::vector<std::vector<Candidate>> cands = {{}};
  EXPECT_TRUE(KMatchOnGraph(query, target, cands, QueryOptions{}).empty());
}


TEST(KMatchTest, TiesAtKResolveByTotalOrderNotDiscoveryOrder) {
  // 6 interchangeable leaves with identical similarity: top-2 must return
  // exactly 2 matches, both at the optimal score, and the tie at the K-th
  // slot must resolve by the MatchBetter total order (lexicographically
  // smallest mappings), not by which branch the search happened to visit
  // first.  This order-invariance is what makes per-root results mergeable
  // bit-identically across threads and shards (DESIGN.md §13).
  Graph target;
  target.AddNode(0);
  for (int i = 0; i < 6; ++i) target.AddNode(1);
  for (NodeId v = 1; v <= 6; ++v) target.AddEdge(0, v, 0);

  Graph query;
  query.AddNode(0);
  query.AddNode(1);
  query.AddEdge(0, 1, 0);

  std::vector<std::vector<Candidate>> cands = {{{0, 1.0}}, {}};
  // Descending-similarity tie broken by ascending node id is the Gview
  // ordering contract; feed the candidates reversed to prove the output
  // does not depend on list order.
  for (NodeId v = 6; v >= 1; --v) cands[1].push_back({v, 0.9});

  QueryOptions options;
  options.k = 2;
  options.semantics = MatchSemantics::kHomomorphicEdges;
  KMatchStats stats;
  std::vector<Match> top = KMatchOnGraph(query, target, cands, options, &stats);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_DOUBLE_EQ(top[0].score, 1.9);
  EXPECT_DOUBLE_EQ(top[1].score, 1.9);
  // All six completions tie, so exact top-K must explore every one of them
  // (ties within eps of the threshold are never pruned) ...
  EXPECT_EQ(stats.matches_found, 6u);
  // ... and keep the two smallest under the total order.
  EXPECT_EQ(top[0].mapping, (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(top[1].mapping, (std::vector<NodeId>{0, 2}));

  QueryOptions all = options;
  all.k = 0;
  EXPECT_EQ(KMatchOnGraph(query, target, cands, all).size(), 6u);
}

TEST(KMatchTest, KZeroResultsSortedBestFirst) {
  Graph target;
  target.AddNode(0);
  for (int i = 0; i < 4; ++i) target.AddNode(1);
  for (NodeId v = 1; v <= 4; ++v) target.AddEdge(0, v, 0);
  Graph query;
  query.AddNode(0);
  query.AddNode(1);
  query.AddEdge(0, 1, 0);
  std::vector<std::vector<Candidate>> cands = {
      {{0, 1.0}}, {{1, 0.7}, {2, 0.95}, {3, 0.8}, {4, 0.9}}};
  QueryOptions options;
  options.k = 0;
  options.semantics = MatchSemantics::kHomomorphicEdges;
  std::vector<Match> all = KMatchOnGraph(query, target, cands, options);
  ASSERT_EQ(all.size(), 4u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i - 1].score, all[i].score);
  }
  EXPECT_DOUBLE_EQ(all[0].score, 1.95);
}

}  // namespace
}  // namespace osq
