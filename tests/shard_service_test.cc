// ShardedQueryService behavior tests on the paper's travel fixture:
// oracle equivalence, caching with vector stamps, fault injection and
// degradation, admission, and update routing end-to-end.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/query_engine.h"
#include "shard/sharded_query_service.h"
#include "test_util.h"

namespace osq {
namespace {

using test::MakeTravelFixture;
using test::TravelFixture;

ShardOptions Shards(size_t n, ShardPolicy policy = ShardPolicy::kHash) {
  ShardOptions so;
  so.num_shards = n;
  so.policy = policy;
  return so;
}

TEST(ShardedQueryServiceTest, MatchesSingleEngineOracleExactly) {
  TravelFixture f = MakeTravelFixture();
  QueryEngine oracle(f.g, f.o, IndexOptions{});
  QueryOptions qo;
  QueryResult expected = oracle.Query(f.query, qo);
  ASSERT_TRUE(expected.status.ok());
  ASSERT_FALSE(expected.matches.empty());

  for (ShardPolicy policy : {ShardPolicy::kHash, ShardPolicy::kRange}) {
    for (size_t n : {1u, 2u, 3u}) {
      ShardedQueryService service(f.g, f.o, IndexOptions{},
                                  Shards(n, policy));
      EXPECT_EQ(service.num_shards(), n);
      ShardedServedResult served = service.Query(f.query, qo);
      ASSERT_TRUE(served.result.status.ok());
      EXPECT_TRUE(served.result.complete());
      EXPECT_FALSE(served.cache_hit);
      EXPECT_EQ(served.shards_failed, 0u);
      EXPECT_EQ(served.result.matches, expected.matches)
          << "policy " << static_cast<int>(policy) << " shards " << n;
      EXPECT_EQ(served.version.v.size(), n);
    }
  }
}

TEST(ShardedQueryServiceTest, SecondQueryHitsCacheWithSameResult) {
  TravelFixture f = MakeTravelFixture();
  ShardedQueryService service(f.g, f.o, IndexOptions{}, Shards(3));
  QueryOptions qo;
  ShardedServedResult first = service.Query(f.query, qo);
  ASSERT_TRUE(first.result.status.ok());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(service.cache_size(), 1u);

  ShardedServedResult second = service.Query(f.query, qo);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.result.matches, first.result.matches);
  EXPECT_EQ(second.version, first.version);

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
}

TEST(ShardedQueryServiceTest, UpdateInvalidatesViaVectorStamp) {
  TravelFixture f = MakeTravelFixture();
  ShardedQueryService service(f.g, f.o, IndexOptions{}, Shards(3));
  QueryOptions qo;
  (void)service.Query(f.query, qo);
  ASSERT_EQ(service.cache_size(), 1u);

  // Deleting CT's guide edge kills the best match; only the owning
  // shard(s) bump their version component, but the vector stamp must
  // still invalidate the cached entry.
  VersionVector before = service.version();
  ASSERT_TRUE(service.ApplyUpdate(GraphUpdate::Delete(f.ct, f.rg, f.guide)));
  VersionVector after = service.version();
  EXPECT_NE(before, after);
  EXPECT_EQ(service.cache_size(), 0u);

  ShardedServedResult served = service.Query(f.query, qo);
  EXPECT_FALSE(served.cache_hit);
  // The oracle on the mutated graph agrees.
  Graph mutated = f.g;
  ASSERT_TRUE(mutated.RemoveEdge(f.ct, f.rg, f.guide));
  QueryEngine oracle(mutated, f.o, IndexOptions{});
  EXPECT_EQ(served.result.matches, oracle.Query(f.query, qo).matches);
}

TEST(ShardedQueryServiceTest, UpdateStreamTracksOracle) {
  TravelFixture f = MakeTravelFixture();
  ShardedQueryService service(f.g, f.o, IndexOptions{}, Shards(2));
  Graph twin = f.g;
  QueryOptions qo;

  // Insert a second guide edge, delete a fav edge, add a node and wire
  // it in — after each batch the sharded result must track a fresh
  // oracle over the twin graph.
  std::vector<GraphUpdate> batch = {
      GraphUpdate::Insert(f.ht, f.rg, f.guide),
      GraphUpdate::Delete(f.ct, f.starlight, f.fav),
  };
  MaintenanceStats ms = service.ApplyUpdates(batch);
  EXPECT_EQ(ms.applied, 2u);
  ASSERT_TRUE(twin.AddEdge(f.ht, f.rg, f.guide));
  ASSERT_TRUE(twin.RemoveEdge(f.ct, f.starlight, f.fav));
  {
    QueryEngine oracle(twin, f.o, IndexOptions{});
    ShardedServedResult served = service.Query(f.query, qo);
    EXPECT_EQ(served.result.matches, oracle.Query(f.query, qo).matches);
  }

  // AddNode must agree on the id (both allocate densely) and route the
  // node so later edges touching it apply.
  LabelId starlight_label = f.dict.Lookup("starlight");
  NodeId fresh = service.AddNode(starlight_label);
  EXPECT_EQ(fresh, twin.AddNode(starlight_label));
  ASSERT_TRUE(service.ApplyUpdate(GraphUpdate::Insert(f.ht, fresh, f.fav)));
  ASSERT_TRUE(service.ApplyUpdate(GraphUpdate::Insert(fresh, f.rg, f.near)));
  ASSERT_TRUE(twin.AddEdge(f.ht, fresh, f.fav));
  ASSERT_TRUE(twin.AddEdge(fresh, f.rg, f.near));
  {
    QueryEngine oracle(twin, f.o, IndexOptions{});
    QueryResult expected = oracle.Query(f.query, qo);
    ShardedServedResult served = service.Query(f.query, qo);
    EXPECT_EQ(served.result.matches, expected.matches);
    // The new HT-based match must actually exist (sanity that the
    // routed node is visible to matching).
    bool uses_fresh = false;
    for (const Match& m : expected.matches) {
      for (NodeId v : m.mapping) uses_fresh |= v == fresh;
    }
    EXPECT_TRUE(uses_fresh);
  }
}

TEST(ShardedQueryServiceTest, FaultedShardDegradesAndIsNeverCached) {
  TravelFixture f = MakeTravelFixture();
  ShardedQueryService service(f.g, f.o, IndexOptions{}, Shards(3));
  service.set_fault_hook([](size_t shard) {
    if (shard == 1) return Status::Unavailable("injected");
    return Status::Ok();
  });
  QueryOptions qo;
  ShardedServedResult served = service.Query(f.query, qo);
  ASSERT_TRUE(served.result.status.ok());
  EXPECT_EQ(served.shards_failed, 1u);
  EXPECT_EQ(served.result.completeness, StopReason::kShardUnavailable);
  EXPECT_FALSE(served.result.complete());
  // Partial results must never be cached.
  EXPECT_EQ(service.cache_size(), 0u);
  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.shard_unavailable, 1u);
  EXPECT_EQ(stats.complete, 0u);

  // Surviving shards still contribute: the result is a subset of the
  // oracle's matches.
  QueryEngine oracle(f.g, f.o, IndexOptions{});
  QueryOptions all;
  all.k = 0;
  QueryResult full = oracle.Query(f.query, all);
  for (const Match& m : served.result.matches) {
    EXPECT_NE(std::find(full.matches.begin(), full.matches.end(), m),
              full.matches.end());
  }

  // Heal the fault: the next query is complete and cacheable.
  service.set_fault_hook(nullptr);
  served = service.Query(f.query, qo);
  EXPECT_TRUE(served.result.complete());
  EXPECT_EQ(service.cache_size(), 1u);
}

TEST(ShardedQueryServiceTest, AllShardsFaultedReturnsUnavailable) {
  TravelFixture f = MakeTravelFixture();
  ShardedQueryService service(f.g, f.o, IndexOptions{}, Shards(2));
  service.set_fault_hook(
      [](size_t) { return Status::Unavailable("injected"); });
  ShardedServedResult served = service.Query(f.query, QueryOptions{});
  EXPECT_EQ(served.result.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(served.shards_failed, 2u);
  EXPECT_TRUE(served.result.matches.empty());
  EXPECT_EQ(served.result.completeness, StopReason::kShardUnavailable);
}

TEST(ShardedQueryServiceTest, StalledShardTripsDeadlineNotCached) {
  TravelFixture f = MakeTravelFixture();
  ShardedQueryService service(f.g, f.o, IndexOptions{}, Shards(2));
  service.set_fault_hook([](size_t shard) {
    if (shard == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    return Status::Ok();
  });
  QueryOptions qo;
  qo.deadline_ms = 5;
  ShardedServedResult served = service.Query(f.query, qo);
  ASSERT_TRUE(served.result.status.ok());
  // The stalled shard blows the deadline (its own evaluation starts
  // past the absolute deadline); completeness reports it.
  EXPECT_EQ(served.result.completeness, StopReason::kDeadlineExceeded);
  EXPECT_EQ(service.cache_size(), 0u);
  EXPECT_EQ(service.Stats().deadline_exceeded, 1u);
}

TEST(ShardedQueryServiceTest, PivotEccentricityBeyondHaloIsRejected) {
  TravelFixture f = MakeTravelFixture();
  ShardOptions so = Shards(2);
  so.halo_radius = 0;  // no replication: only single-node queries evaluable
  ShardedQueryService service(f.g, f.o, IndexOptions{}, so);
  ShardedServedResult served = service.Query(f.query, QueryOptions{});
  EXPECT_EQ(served.result.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(served.result.matches.empty());
}

TEST(ShardedQueryServiceTest, AdmissionControlShedsAtCapacity) {
  TravelFixture f = MakeTravelFixture();
  ServeOptions so;
  so.max_inflight = 1;
  ShardedQueryService service(f.g, f.o, IndexOptions{}, Shards(2), so);

  // Hold the single slot hostage from inside a fault hook while a second
  // query arrives on another thread.
  std::atomic<bool> release{false};
  std::atomic<bool> inside{false};
  service.set_fault_hook([&](size_t) {
    inside.store(true);
    while (!release.load()) std::this_thread::yield();
    return Status::Ok();
  });
  std::thread t([&] { (void)service.Query(f.query, QueryOptions{}); });
  while (!inside.load()) std::this_thread::yield();

  ShardedServedResult shed = service.Query(f.query, QueryOptions{});
  EXPECT_TRUE(shed.shed);
  EXPECT_EQ(shed.result.status.code(), StatusCode::kUnavailable);
  release.store(true);
  t.join();
  EXPECT_EQ(service.Stats().shed, 1u);
  EXPECT_EQ(service.inflight(), 0u);
}

}  // namespace
}  // namespace osq
