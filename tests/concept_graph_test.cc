#include "core/concept_graph.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>
#include "common/rng.h"
#include "ontology/ontology_partition.h"
#include "test_util.h"

namespace osq {
namespace {

// Builds the Fig. 3 / Example IV.2 color concept graph with concept labels
// {red, blue, green} and beta = 0.81.
ConceptGraph BuildColorConceptGraph(const test::ColorFixture& f,
                                    ConceptGraphStats* stats = nullptr) {
  SimilarityFunction sim(0.9);
  ConceptGraphOptions options;
  options.beta = 0.81;
  return ConceptGraph::Build(
      f.g, f.o, sim, options,
      {f.red_label, f.blue_label, f.green_label}, stats);
}

std::set<std::set<NodeId>> BlocksAsSets(const ConceptGraph& cg) {
  std::set<std::set<NodeId>> result;
  for (BlockId b : cg.AliveBlocks()) {
    result.insert(std::set<NodeId>(cg.Members(b).begin(),
                                   cg.Members(b).end()));
  }
  return result;
}

TEST(ConceptGraphTest, ColorExampleReproducesFig5Partition) {
  test::ColorFixture f = test::MakeColorFixture();
  ConceptGraphStats stats;
  ConceptGraph cg = BuildColorConceptGraph(f, &stats);

  // Example IV.2: initial partition {red, blue, green}, three splits.
  EXPECT_EQ(stats.initial_blocks, 3u);
  EXPECT_EQ(stats.final_blocks, 6u);
  EXPECT_EQ(cg.num_blocks(), 6u);

  // Fig. 5: {rose,pink} {flame} | {blue,sky} {violet} | {green,lime} {olive}
  std::set<std::set<NodeId>> expected = {
      {f.rose, f.pink}, {f.flame},       {f.blue, f.sky},
      {f.violet},       {f.green, f.lime}, {f.olive}};
  EXPECT_EQ(BlocksAsSets(cg), expected);
  EXPECT_TRUE(cg.Validate());
}

TEST(ConceptGraphTest, ColorExampleBlockLabels) {
  test::ColorFixture f = test::MakeColorFixture();
  ConceptGraph cg = BuildColorConceptGraph(f);
  EXPECT_EQ(cg.BlockLabel(cg.BlockOf(f.rose)), f.red_label);
  EXPECT_EQ(cg.BlockLabel(cg.BlockOf(f.flame)), f.red_label);
  EXPECT_EQ(cg.BlockLabel(cg.BlockOf(f.violet)), f.blue_label);
  EXPECT_EQ(cg.BlockLabel(cg.BlockOf(f.olive)), f.green_label);
}

TEST(ConceptGraphTest, ColorExampleBlockEdges) {
  test::ColorFixture f = test::MakeColorFixture();
  ConceptGraph cg = BuildColorConceptGraph(f);
  BlockId red1 = cg.BlockOf(f.rose);    // {rose, pink}
  BlockId red2 = cg.BlockOf(f.flame);   // {flame}
  BlockId blue1 = cg.BlockOf(f.blue);   // {blue, sky}
  BlockId blue2 = cg.BlockOf(f.violet); // {violet}
  BlockId green2 = cg.BlockOf(f.olive); // {olive}
  EXPECT_EQ(cg.Successors(red1), std::vector<BlockId>{blue1});
  EXPECT_EQ(cg.Successors(red2), std::vector<BlockId>{blue2});
  std::vector<BlockId> pred_violet = cg.Predecessors(blue2);
  std::sort(pred_violet.begin(), pred_violet.end());
  std::vector<BlockId> expected = {red2, green2};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(pred_violet, expected);
  EXPECT_TRUE(cg.HasSuccessorBlock(red1, blue1, kInvalidLabel));
  EXPECT_FALSE(cg.HasSuccessorBlock(red1, blue2, kInvalidLabel));
  EXPECT_TRUE(cg.HasPredecessorBlock(blue2, green2, kInvalidLabel));
}

TEST(ConceptGraphTest, BlocksWithLabelTracksSplits) {
  test::ColorFixture f = test::MakeColorFixture();
  ConceptGraph cg = BuildColorConceptGraph(f);
  EXPECT_EQ(cg.BlocksWithLabel(f.red_label).size(), 2u);
  EXPECT_EQ(cg.BlocksWithLabel(f.blue_label).size(), 2u);
  EXPECT_EQ(cg.BlocksWithLabel(f.green_label).size(), 2u);
  EXPECT_TRUE(cg.BlocksWithLabel(f.dict.Lookup("rose")).empty());
}

TEST(ConceptGraphTest, SizeCountsBlocksAndEdges) {
  test::ColorFixture f = test::MakeColorFixture();
  ConceptGraph cg = BuildColorConceptGraph(f);
  // 6 blocks; block edges: red1->blue1, red2->blue2, green2->blue2.
  EXPECT_EQ(cg.SizeNodesPlusEdges(), 6u + 3u);
}

TEST(ConceptGraphTest, UncoveredLabelBecomesOwnConcept) {
  // A data node whose label is not in the ontology at all.
  LabelDictionary dict;
  OntologyGraph o;
  o.AddRelation(dict.Intern("a"), dict.Intern("b"));
  Graph g;
  g.AddNode(dict.Intern("a"));
  g.AddNode(dict.Intern("mystery"));
  SimilarityFunction sim(0.9);
  ConceptGraph cg = ConceptGraph::Build(g, o, sim, {.beta = 0.81},
                                        {dict.Lookup("a")});
  EXPECT_TRUE(cg.Validate());
  EXPECT_EQ(cg.num_blocks(), 2u);
  EXPECT_EQ(cg.BlockLabel(cg.BlockOf(1)), dict.Lookup("mystery"));
}

TEST(ConceptGraphTest, NodesWithSameConceptGrouped) {
  // Two nodes with different labels but the same nearest concept label and
  // identical (empty) neighborhoods stay in one block.
  LabelDictionary dict;
  OntologyGraph o;
  LabelId c = dict.Intern("c");
  LabelId x = dict.Intern("x");
  LabelId y = dict.Intern("y");
  o.AddRelation(c, x);
  o.AddRelation(c, y);
  Graph g;
  g.AddNode(x);
  g.AddNode(y);
  SimilarityFunction sim(0.9);
  ConceptGraph cg = ConceptGraph::Build(g, o, sim, {.beta = 0.81}, {c});
  EXPECT_EQ(cg.num_blocks(), 1u);
  EXPECT_EQ(cg.Members(cg.BlockOf(0)).size(), 2u);
  EXPECT_TRUE(cg.Validate());
}

TEST(ConceptGraphTest, EmptyGraph) {
  LabelDictionary dict;
  OntologyGraph o;
  o.AddRelation(dict.Intern("a"), dict.Intern("b"));
  Graph g;
  SimilarityFunction sim(0.9);
  ConceptGraph cg =
      ConceptGraph::Build(g, o, sim, {.beta = 0.81}, {dict.Lookup("a")});
  EXPECT_EQ(cg.num_blocks(), 0u);
  EXPECT_TRUE(cg.Validate());
}

TEST(ConceptGraphTest, EdgeLabelAwareSplitsFiner) {
  // Two nodes under one concept, each pointing at the same target block but
  // with different edge labels: label-unaware keeps them together,
  // label-aware splits them.
  LabelDictionary dict;
  OntologyGraph o;
  LabelId c = dict.Intern("c");
  LabelId x = dict.Intern("x");
  LabelId t = dict.Intern("t");
  o.AddRelation(c, x);
  o.AddLabel(t);
  Graph g;
  NodeId a = g.AddNode(x);
  NodeId b = g.AddNode(x);
  NodeId target1 = g.AddNode(t);
  NodeId target2 = g.AddNode(t);
  g.AddEdge(a, target1, /*label=*/1);
  g.AddEdge(b, target2, /*label=*/2);
  SimilarityFunction sim(0.9);

  ConceptGraph unaware = ConceptGraph::Build(
      g, o, sim, {.beta = 0.81, .edge_label_aware = false}, {c, t});
  EXPECT_EQ(unaware.BlockOf(a), unaware.BlockOf(b));
  EXPECT_TRUE(unaware.Validate());

  ConceptGraph aware = ConceptGraph::Build(
      g, o, sim, {.beta = 0.81, .edge_label_aware = true}, {c, t});
  EXPECT_NE(aware.BlockOf(a), aware.BlockOf(b));
  EXPECT_TRUE(aware.Validate());
}

TEST(ConceptGraphTest, ValidateCatchesForeignGraphMutation) {
  // Mutating the data graph behind the index's back breaks the invariant;
  // Validate must notice.  (The supported path is RepairAfterEdge*.)
  test::ColorFixture f = test::MakeColorFixture();
  ConceptGraph cg = BuildColorConceptGraph(f);
  ASSERT_TRUE(cg.Validate());
  f.g.AddEdge(f.rose, f.violet, 0);  // rose now differs from pink
  EXPECT_FALSE(cg.Validate());
}

TEST(ConceptGraphTest, TravelFixtureValidates) {
  test::TravelFixture f = test::MakeTravelFixture();
  SimilarityFunction sim(0.9);
  Rng rng(1);
  std::vector<LabelId> concepts =
      SelectConceptLabels(f.o, sim, 0.81, 3, &rng);
  ConceptGraph cg =
      ConceptGraph::Build(f.g, f.o, sim, {.beta = 0.81}, concepts);
  EXPECT_TRUE(cg.Validate());
  EXPECT_GE(cg.num_blocks(), 2u);
  // Every data node is in some block with a sufficiently similar label.
  for (NodeId v = 0; v < f.g.num_nodes(); ++v) {
    BlockId b = cg.BlockOf(v);
    EXPECT_TRUE(cg.IsAlive(b));
    EXPECT_TRUE(
        sim.AtLeast(f.o, f.g.NodeLabel(v), cg.BlockLabel(b), 0.81));
  }
}

}  // namespace
}  // namespace osq
