// Fixture: RAII-guarded locking that must pass osq-raw-lock.
#include <memory>
#include <mutex>
#include <shared_mutex>

namespace fixture {

std::mutex mu;
std::shared_mutex rw;

int Guarded() {
  std::lock_guard<std::mutex> hold(mu);
  return 1;
}

int EarlyRelease() {
  std::unique_lock<std::mutex> lk(mu);
  lk.unlock();  // early release through the guard is exception-safe
  lk.lock();
  return 2;
}

int SharedGuarded() {
  std::shared_lock<std::shared_mutex> lock(rw);
  lock.unlock();
  return 3;
}

std::shared_ptr<int> Promote(const std::weak_ptr<int>& w) {
  std::weak_ptr<int> copy = w;
  return copy.lock();  // weak_ptr::lock is not a mutex operation
}

}  // namespace fixture
