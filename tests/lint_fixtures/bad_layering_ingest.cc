// Fixture: src/ingest reaching the serving tier directly instead of
// through the update_sink bridge (osq-layering).  The `layering_ingest`
// stem classifies this file as module `ingest`.
#include "serve/query_service.h"

#include "core/index_maintenance.h"

namespace fixture {

int UsesNothing() { return 0; }

}  // namespace fixture
