// Fixture: sanctioned randomness/clock idioms that must pass
// osq-core-determinism.
#include <chrono>
#include <cstdint>

namespace fixture {

// Seeded generator in the style of common/rng.h — callers thread it through.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 1) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

 private:
  uint64_t state_;
};

uint64_t Draw(Rng& rng) {
  return rng.Next();
}

// Monotonic time for durations is fine; only wall clocks are banned.
int64_t MonotonicNanos() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// Identifiers merely containing the banned names must not count.
int strand_count = 0;
int runtime_budget(int deadline) { return deadline + strand_count; }

}  // namespace fixture
