// Fixture: a tier-0 module reaching up into the serving tiers — both
// includes are back-edges in the module DAG (osq-layering).  The
// `layering_core` stem classifies this file as module `core`.
#include "serve/query_service.h"
#include "shard/partitioner.h"

#include "graph/graph.h"

namespace fixture {

int UsesNothing() { return 0; }

}  // namespace fixture
