// Lint fixture: direct adjacency-storage access outside the Graph
// implementation.  Both the CSR member names and legacy out_[v]/in_[v]
// subscripts must be flagged — 8 violations in total.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace osq {
namespace fixture {

// A mirrored copy of the CSR arrays is as layout-coupled as a subscript:
// both declarations are violations.
struct ShadowCsr {
  std::vector<size_t> out_offsets_;
  std::vector<uint32_t> out_entries_;
};

inline size_t Degree(const ShadowCsr& g, size_t v) {
  return g.out_offsets_[v + 1] - g.out_offsets_[v];  // 2 violations
}

inline uint32_t FirstNeighbor(const ShadowCsr& g, size_t v) {
  return g.out_entries_[g.out_offsets_[v]];  // 2 violations
}

inline size_t LegacyDegree(const std::vector<std::vector<uint32_t>>& out_,
                           size_t v) {
  return out_[v].size();  // violation: pre-CSR out_[v] subscript
}

inline size_t LegacyInDegree(const std::vector<std::vector<uint32_t>>& in_,
                             size_t v) {
  return in_[v].size();  // violation: pre-CSR in_[v] subscript
}

}  // namespace fixture
}  // namespace osq
