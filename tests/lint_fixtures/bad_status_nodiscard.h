// Fixture: every declaration here must trip osq-status-nodiscard.
#ifndef OSQ_TESTS_LINT_FIXTURES_BAD_STATUS_NODISCARD_H_
#define OSQ_TESTS_LINT_FIXTURES_BAD_STATUS_NODISCARD_H_

namespace fixture {

class Status {
 public:
  bool ok() const { return true; }
};

Status LoadThing(int x);

static Status SaveThing(int x);

}  // namespace fixture

#endif  // OSQ_TESTS_LINT_FIXTURES_BAD_STATUS_NODISCARD_H_
