// Fixture: lock-discipline breaches that must trip osq-guarded-access.
// Self-contained: the OSQ_* annotations below feed the analyzer's index.
#include <mutex>
#include <shared_mutex>

#include "common/annotations.h"

namespace fixture {

class Counters {
 public:
  int Get() const {
    return value_;  // BAD: read without holding mu_
  }

  int GetLocked() const {
    std::lock_guard<std::mutex> lock(mu_);
    return value_;  // ok
  }

  void Bump() {
    ++value_;  // BAD: write without holding mu_
  }

  void BumpShared() {
    std::shared_lock<std::shared_mutex> lock(smu_);
    shared_value_ += 1;  // BAD: write under a shared lock
  }

  void EarlyRelease() {
    std::unique_lock<std::mutex> lock(mu_);
    value_ = 1;  // ok
    lock.unlock();
    value_ = 2;  // BAD: write after the guard released mu_
  }

  void CallsHelperUnlocked() {
    ResetLocked();  // BAD: ResetLocked requires mu_ held exclusively
  }

  void ReacquiresViaExcluded() {
    std::lock_guard<std::mutex> lock(mu_);
    Rebuild();  // BAD: Rebuild promises to acquire mu_ itself
  }

 private:
  void ResetLocked() OSQ_REQUIRES(mu_);
  void Rebuild() OSQ_EXCLUDES(mu_);

  mutable std::mutex mu_;
  mutable std::shared_mutex smu_;
  int value_ OSQ_GUARDED_BY(mu_) = 0;
  int shared_value_ OSQ_GUARDED_BY(smu_) = 0;
};

}  // namespace fixture
