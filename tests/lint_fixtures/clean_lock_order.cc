// Fixture: acquisition sequences consistent with the OSQ_ACQUIRED_BEFORE
// DAG (osq-lock-order must stay silent), including the reader's
// gate-passthrough idiom where the gate is released before the snapshot
// lock is taken.
#include <mutex>
#include <shared_mutex>

#include "common/annotations.h"

namespace fixture {

class Service {
 public:
  void Writer() {
    std::scoped_lock<std::mutex> gate(writer_gate_);
    std::unique_lock<std::shared_mutex> lock(mu_);
  }

  void ReaderPassthrough() {
    {
      std::scoped_lock<std::mutex> gate(writer_gate_);
    }  // gate released before the shared acquisition — no ordering event
    std::shared_lock<std::shared_mutex> lock(mu_);
  }

  void ChainInOrder() {
    std::lock_guard<std::mutex> hold_a(a_mu_);
    std::lock_guard<std::mutex> hold_b(b_mu_);
    std::lock_guard<std::mutex> hold_c(c_mu_);
  }

 private:
  std::mutex writer_gate_ OSQ_ACQUIRED_BEFORE(mu_);
  mutable std::shared_mutex mu_;
  std::mutex a_mu_ OSQ_ACQUIRED_BEFORE(b_mu_);
  std::mutex b_mu_ OSQ_ACQUIRED_BEFORE(c_mu_);
  std::mutex c_mu_;
};

}  // namespace fixture
