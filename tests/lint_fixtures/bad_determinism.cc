// Fixture: ambient randomness and wall clocks; each use must trip
// osq-core-determinism.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

int AmbientRandom() {
  return rand() % 7;
}

void SeedFromClock() {
  srand(static_cast<unsigned>(time(nullptr)));
}

unsigned HardwareEntropy() {
  std::random_device rd;
  return rd();
}

double EngineOutsideRng() {
  std::mt19937 gen(42);
  return static_cast<double>(gen());
}

long long WallClock() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace fixture
