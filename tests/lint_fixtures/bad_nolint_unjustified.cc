// Fixture: suppressions without a written justification must still fail.
#include <iostream>

namespace fixture {

void Print(int matches) {
  std::cout << matches;  // NOLINT(osq-no-stdout)
  // NOLINTNEXTLINE(osq-no-stdout):
  std::cout << matches;
}

}  // namespace fixture
