// Fixture: emission-layer code (filename says "kmatch") that must pass
// osq-unordered-iter — unordered state is fine as long as emission order
// comes from a sorted vector.
#include <algorithm>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Emitter {
  std::unordered_map<int, double> scores_;

  std::vector<int> Emit() const {
    std::vector<int> keys;
    keys.reserve(scores_.size());
    // Membership lookups against the unordered map are order-independent.
    for (int node = 0; node < 100; ++node) {
      if (scores_.count(node) > 0) {
        keys.push_back(node);
      }
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  }
};

}  // namespace fixture
