// Fixture: well-behaved shard-coordinator code.  All per-shard work goes
// through the ShardEngine adapter; the coordinator only scatters, merges,
// and routes — no engine types, no graph walks, no direct verification.

#include <algorithm>
#include <cstddef>
#include <vector>

namespace osq {

struct FakeShard {
  std::vector<int> Query(int query, int pivot) const;
  void AddNodeGlobal(int global, int label, bool owned);
  bool ApplyUpdateGlobal(int update);
};

std::vector<int> Coordinate(std::vector<FakeShard>* shards, int query) {
  std::vector<int> merged;
  for (size_t i = 0; i < shards->size(); ++i) {
    std::vector<int> part = (*shards)[i].Query(query, 0);
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

void Route(std::vector<FakeShard>* shards, int update) {
  for (FakeShard& shard : *shards) {
    shard.AddNodeGlobal(7, 1, true);
    (void)shard.ApplyUpdateGlobal(update);
  }
}

}  // namespace osq
