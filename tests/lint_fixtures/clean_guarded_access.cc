// Fixture: disciplined guarded access that must pass osq-guarded-access —
// early returns inside locked scopes, nested scopes, defer_lock with a
// later .lock(), unlock/relock windows, this-> access, multi-mutex
// scoped_lock, and helper contracts (exclusive satisfies shared).
#include <mutex>
#include <shared_mutex>

#include "common/annotations.h"

namespace fixture {

class Counters {
 public:
  int Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (value_ < 0) {
      return 0;  // early return inside the locked scope
    }
    return value_;
  }

  void Set(int v) {
    std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
    lock.lock();
    value_ = v;
    this->value_ = v;
  }

  void Nested() {
    std::lock_guard<std::mutex> outer(mu_);
    value_ = 1;
    {
      int tmp = value_;  // still locked in a nested scope
      value_ = tmp + 1;
    }
    value_ = 3;
  }

  void Pair() {
    std::scoped_lock<std::mutex, std::mutex> lock(a_mu_, b_mu_);
    a_ = 1;
    b_ = 2;
  }

  void Toggle() {
    std::unique_lock<std::mutex> lock(mu_);
    value_ = 1;
    lock.unlock();
    Rebuild();  // OSQ_EXCLUDES(mu_) — satisfied in the unlocked window
    lock.lock();
    value_ = 2;
  }

  int ReadViaHelper() const {
    std::shared_lock<std::shared_mutex> lock(smu_);
    return SumLocked();
  }

  int SumExclusive() {
    std::unique_lock<std::shared_mutex> lock(smu_);
    shared_value_ = 7;
    return SumLocked();  // exclusive hold satisfies OSQ_REQUIRES_SHARED
  }

 private:
  void Rebuild() OSQ_EXCLUDES(mu_);
  int SumLocked() const OSQ_REQUIRES_SHARED(smu_);

  mutable std::mutex mu_;
  std::mutex a_mu_;
  std::mutex b_mu_;
  mutable std::shared_mutex smu_;
  int value_ OSQ_GUARDED_BY(mu_) = 0;
  int a_ OSQ_GUARDED_BY(a_mu_) = 0;
  int b_ OSQ_GUARDED_BY(b_mu_) = 0;
  int shared_value_ OSQ_GUARDED_BY(smu_) = 0;
};

}  // namespace fixture
