// Fixture: allowed formatting/diagnostic output that must pass
// osq-no-stdout — snprintf into buffers and stderr diagnostics are fine,
// and a justified suppression silences a deliberate print.
#include <cstdio>
#include <iostream>
#include <string>

namespace fixture {

std::string Render(int matches) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "matches: %d", matches);
  return buf;
}

void FatalDiagnostic(const char* what) {
  std::fprintf(stderr, "fatal: %s\n", what);
}

void DebugDump(int matches) {
  // NOLINTNEXTLINE(osq-no-stdout): fixture demonstrating a justified print
  std::cout << matches << "\n";
  printf("%d\n", matches);  // NOLINT(osq-no-stdout): same-line suppression
}

// The word printf inside strings or comments must not count: "printf(".
const char* kDoc = "call printf( at your own risk";

}  // namespace fixture
