// Lint fixture: adjacency traversal through the public Graph API, plus
// near-miss identifiers (timeout_, margin_, fan_out) that the
// osq-graph-adjacency rule must not flag.

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace osq {
namespace fixture {

inline size_t Fanout(const Graph& g, NodeId v) {
  size_t n = 0;
  for (const AdjEntry& e : g.OutEdges(v)) {
    (void)e;
    ++n;
  }
  return n + g.InEdges(v).size();
}

struct Schedule {
  std::vector<int> timeout_;  // contains "out_" but is not adjacency storage
  std::vector<int> margin_;   // contains "in_" likewise

  int At(size_t i) const { return timeout_[i] + margin_[i]; }
};

inline int FanOutTable(const std::vector<int>& fan_out, size_t i) {
  return fan_out[i];  // no trailing underscore: plain local data
}

}  // namespace fixture
}  // namespace osq
