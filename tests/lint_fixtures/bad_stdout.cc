// Fixture: printing from library code; every statement must trip
// osq-no-stdout.
#include <cstdio>
#include <iostream>

namespace fixture {

void Print(int matches) {
  std::cout << "matches: " << matches << "\n";
  printf("matches: %d\n", matches);
  std::printf("matches: %d\n", matches);
  puts("done");
}

}  // namespace fixture
