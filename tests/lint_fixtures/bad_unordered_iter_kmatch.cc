// Fixture: the "kmatch" in the filename classifies this as a match-emission
// layer, so iterating unordered containers must trip osq-unordered-iter.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Emitter {
  std::unordered_map<int, double> scores_;
  std::unordered_set<int> seen_;

  std::vector<int> Emit() const {
    std::vector<int> out;
    for (const auto& kv : scores_) {
      out.push_back(kv.first);
    }
    for (auto it = seen_.begin(); it != seen_.end(); ++it) {
      out.push_back(*it);
    }
    return out;
  }

  std::vector<int> EmitMultiline() const {
    std::vector<int> out;
    for (const auto& [node, score] :
         scores_) {
      out.push_back(node);
    }
    return out;
  }
};

}  // namespace fixture
