// Fixture: raw mutex manipulation that must trip osq-raw-lock.
#include <mutex>

namespace fixture {

std::mutex mu;

void RawLockPair() {
  mu.lock();
  mu.unlock();
}

void ThroughPointer(std::mutex* m) {
  m->lock();
  m->unlock();
}

bool TryVariant(std::mutex& m) {
  if (m.try_lock()) {
    m.unlock();
    return true;
  }
  return false;
}

}  // namespace fixture
