// Fixture: acquisition sequences contradicting the OSQ_ACQUIRED_BEFORE DAG
// (osq-lock-order).  Mirrors the seeded serving-tier hazard: taking the
// write-intent gate after the snapshot lock re-creates the
// reader-starvation window the gate exists to close.
#include <mutex>
#include <shared_mutex>

#include "common/annotations.h"

namespace fixture {

class Service {
 public:
  void GateAfterSnapshot() {
    std::unique_lock<std::shared_mutex> lock(mu_);
    std::scoped_lock<std::mutex> gate(writer_gate_);  // BAD: gate after mu_
  }

  void CorrectWriter() {
    std::scoped_lock<std::mutex> gate(writer_gate_);
    std::unique_lock<std::shared_mutex> lock(mu_);  // ok: gate then mu_
  }

  void TransitiveInversion() {
    std::lock_guard<std::mutex> hold_c(c_mu_);
    std::lock_guard<std::mutex> hold_a(a_mu_);  // BAD: a before c transitively
  }

 private:
  // Global order: writer_gate_ -> mu_, and a_mu_ -> b_mu_ -> c_mu_.
  std::mutex writer_gate_ OSQ_ACQUIRED_BEFORE(mu_);
  mutable std::shared_mutex mu_;
  std::mutex a_mu_ OSQ_ACQUIRED_BEFORE(b_mu_);
  std::mutex b_mu_ OSQ_ACQUIRED_BEFORE(c_mu_);
  std::mutex c_mu_;
};

}  // namespace fixture
