// Fixture: the shard coordinator's allowed dependencies — its own module,
// the serve tier below it, and tier-0 — must pass osq-layering.  The
// `layering_shard` stem classifies this file as module `shard`.
#include "common/status.h"
#include "serve/result_cache.h"
#include "shard/partitioner.h"

namespace fixture {

int UsesNothing() { return 0; }

}  // namespace fixture
