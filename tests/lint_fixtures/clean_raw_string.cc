// Fixture: raw-string literals whose CONTENTS would trip token rules if
// the lexer failed to blank them — plain form, custom delimiter, encoding
// prefixes, and an identifier that merely ends in R followed by a string
// (not a raw-string prefix).  Must lint clean.
namespace fixture {

const char* kPlainRaw = R"(std::cout << "hidden"; mu.lock();)";
const char* kDelimited = R"delim(printf("also hidden"); rand();)delim";
const char* kU8 = u8R"(time(nullptr) inside a literal)";
const char* kWide = LR"(srand(42) inside a literal)";
// An identifier ending in R directly before a quote is NOT a raw-string
// prefix; the literal below is an ordinary string (fixture is never
// compiled — only lexed).
const char* kIdentR = STR_R"std::cout << not raw";

int AfterTheLiterals() { return 1; }  // lexer must resync to real code

}  // namespace fixture
