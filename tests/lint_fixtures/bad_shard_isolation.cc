// Fixture: shard-coordinator code reaching into engine/graph internals.
// Every reach-through below must trigger osq-shard-isolation — the
// coordinator may only talk to shards via the ShardEngine adapter.

#include <vector>

namespace osq {

struct FakeGraph {
  std::vector<int> OutEdges(int v) const;
  std::vector<int> InEdges(int v) const;
  bool AddEdge(int u, int v, int l);
  bool RemoveEdge(int u, int v, int l);
};

void Coordinate(FakeGraph* g) {
  QueryEngine engine;                    // violation: engine type
  OntologyIndex index;                   // violation: engine type
  auto filter = GviewFilter(index);      // violation: engine type
  auto matches = KMatch(filter);         // violation: direct verify call
  auto sub = InducedSubgraph(*g);        // violation: direct subgraph build
  for (int e : g->OutEdges(0)) {         // violation: adjacency walk
    (void)e;
  }
  (void)g->InEdges(1);                   // violation: adjacency walk
  g->AddEdge(0, 1, 2);                   // violation: graph mutation
  g->RemoveEdge(0, 1, 2);                // violation: graph mutation
  (void)matches;
  (void)sub;
  (void)engine;
}

}  // namespace osq
