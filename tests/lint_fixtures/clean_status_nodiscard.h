// Fixture: annotated Status declarations that must pass osq-status-nodiscard.
#ifndef OSQ_TESTS_LINT_FIXTURES_CLEAN_STATUS_NODISCARD_H_
#define OSQ_TESTS_LINT_FIXTURES_CLEAN_STATUS_NODISCARD_H_

namespace fixture {

class [[nodiscard]] Status {
 public:
  bool ok() const { return true; }
};

class StatusOr;  // forward declaration: no attribute required

[[nodiscard]] Status LoadThing(int x);

[[nodiscard]]
Status SaveThing(int x);

}  // namespace fixture

#endif  // OSQ_TESTS_LINT_FIXTURES_CLEAN_STATUS_NODISCARD_H_
