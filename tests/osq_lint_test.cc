// Tests for tools/osq_lint: every bad fixture must trigger its rule, every
// clean fixture must pass, and suppression requires a justification.
//
// The fixture directory is baked in by CMake (OSQ_LINT_FIXTURE_DIR); the
// fixtures double as documentation of what each rule accepts and rejects.

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "osq_lint.h"

namespace osq {
namespace lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(OSQ_LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<Violation> LintFixture(const std::string& name) {
  std::vector<Violation> out;
  EXPECT_TRUE(LintFile(FixturePath(name), &out)) << "unreadable: " << name;
  return out;
}

size_t CountRule(const std::vector<Violation>& vs, const std::string& rule) {
  return static_cast<size_t>(
      std::count_if(vs.begin(), vs.end(),
                    [&](const Violation& v) { return v.rule == rule; }));
}

TEST(OsqLintFixtureTest, BadStatusNodiscard) {
  std::vector<Violation> vs = LintFixture("bad_status_nodiscard.h");
  EXPECT_EQ(CountRule(vs, "osq-status-nodiscard"), 3u);  // class + 2 decls
  EXPECT_EQ(vs.size(), 3u);
}

TEST(OsqLintFixtureTest, CleanStatusNodiscard) {
  EXPECT_TRUE(LintFixture("clean_status_nodiscard.h").empty());
}

TEST(OsqLintFixtureTest, BadRawLock) {
  std::vector<Violation> vs = LintFixture("bad_raw_lock.cc");
  EXPECT_EQ(CountRule(vs, "osq-raw-lock"), 6u);
  EXPECT_EQ(vs.size(), 6u);
}

TEST(OsqLintFixtureTest, CleanRawLock) {
  EXPECT_TRUE(LintFixture("clean_raw_lock.cc").empty());
}

TEST(OsqLintFixtureTest, BadStdout) {
  std::vector<Violation> vs = LintFixture("bad_stdout.cc");
  EXPECT_EQ(CountRule(vs, "osq-no-stdout"), 4u);
  EXPECT_EQ(vs.size(), 4u);
}

TEST(OsqLintFixtureTest, CleanStdout) {
  EXPECT_TRUE(LintFixture("clean_stdout.cc").empty());
}

TEST(OsqLintFixtureTest, BadUnorderedIter) {
  std::vector<Violation> vs = LintFixture("bad_unordered_iter_kmatch.cc");
  EXPECT_EQ(CountRule(vs, "osq-unordered-iter"), 3u);
  EXPECT_EQ(vs.size(), 3u);
}

TEST(OsqLintFixtureTest, CleanUnorderedIter) {
  EXPECT_TRUE(LintFixture("clean_unordered_iter_kmatch.cc").empty());
}

TEST(OsqLintFixtureTest, BadDeterminism) {
  std::vector<Violation> vs = LintFixture("bad_determinism.cc");
  EXPECT_GE(CountRule(vs, "osq-core-determinism"), 5u);
  EXPECT_EQ(CountRule(vs, "osq-core-determinism"), vs.size());
}

TEST(OsqLintFixtureTest, CleanDeterminism) {
  EXPECT_TRUE(LintFixture("clean_determinism.cc").empty());
}

TEST(OsqLintFixtureTest, BadGraphAdjacency) {
  std::vector<Violation> vs = LintFixture("bad_graph_adjacency.cc");
  // 2 mirrored CSR declarations + 4 CSR subscript uses + 2 legacy out_[v]/
  // in_[v] subscripts.
  EXPECT_EQ(CountRule(vs, "osq-graph-adjacency"), 8u);
  EXPECT_EQ(vs.size(), 8u);
}

TEST(OsqLintFixtureTest, CleanGraphAdjacency) {
  EXPECT_TRUE(LintFixture("clean_graph_adjacency.cc").empty());
}

TEST(OsqLintFixtureTest, BadShardIsolation) {
  std::vector<Violation> vs = LintFixture("bad_shard_isolation.cc");
  // 3 engine-type mentions + 2 direct engine calls + 4 graph members.
  EXPECT_EQ(CountRule(vs, "osq-shard-isolation"), 9u);
  EXPECT_EQ(vs.size(), 9u);
}

TEST(OsqLintFixtureTest, CleanShardIsolation) {
  EXPECT_TRUE(LintFixture("clean_shard_isolation.cc").empty());
}

TEST(OsqLintFixtureTest, UnjustifiedSuppressionStillFails) {
  std::vector<Violation> vs = LintFixture("bad_nolint_unjustified.cc");
  EXPECT_EQ(CountRule(vs, "osq-no-stdout"), 2u);
  for (const Violation& v : vs) {
    EXPECT_NE(v.message.find("justification"), std::string::npos)
        << v.ToString();
  }
}

// --- classification -------------------------------------------------------

TEST(OsqLintClassifyTest, EmissionLayers) {
  EXPECT_TRUE(ClassifyPath("src/core/kmatch.cc").emission);
  EXPECT_TRUE(ClassifyPath("src/core/query_engine.cc").emission);
  EXPECT_TRUE(ClassifyPath("src/serve/query_service.cc").emission);
  EXPECT_FALSE(ClassifyPath("src/core/filtering.cc").emission);
  EXPECT_FALSE(ClassifyPath("src/graph/graph.cc").emission);
}

TEST(OsqLintClassifyTest, RngExemption) {
  EXPECT_TRUE(ClassifyPath("src/common/rng.h").rng_exempt);
  EXPECT_TRUE(ClassifyPath("src/common/rng.cc").rng_exempt);
  EXPECT_FALSE(ClassifyPath("src/gen/synthetic.cc").rng_exempt);
}

TEST(OsqLintClassifyTest, ShardCoordinator) {
  EXPECT_TRUE(
      ClassifyPath("src/shard/sharded_query_service.cc").shard_coordinator);
  EXPECT_TRUE(
      ClassifyPath("src/shard/sharded_query_service.h").shard_coordinator);
  // The adapter and the partitioner exist to own engine/graph internals.
  EXPECT_FALSE(ClassifyPath("src/shard/shard_engine.cc").shard_coordinator);
  EXPECT_FALSE(ClassifyPath("src/shard/shard_engine.h").shard_coordinator);
  EXPECT_FALSE(ClassifyPath("src/shard/partitioner.cc").shard_coordinator);
  EXPECT_FALSE(ClassifyPath("src/serve/query_service.cc").shard_coordinator);
  // The whole shard layer emits merged matches: determinism rules apply.
  EXPECT_TRUE(ClassifyPath("src/shard/sharded_query_service.cc").emission);
  EXPECT_TRUE(ClassifyPath("src/shard/shard_engine.cc").emission);
}

TEST(OsqLintContentShardTest, CoordinatorAdapterCallsAreAllowed) {
  std::vector<Violation> out;
  LintContent("src/shard/sharded_query_service.cc",
              "void f(std::vector<ShardEngine>* shards) {\n"
              "  (*shards)[0].Query(1, 2);\n"
              "}\n",
              ClassifyPath("src/shard/sharded_query_service.cc"), &out);
  EXPECT_TRUE(out.empty());
}

TEST(OsqLintClassifyTest, GraphCoreExemption) {
  EXPECT_TRUE(ClassifyPath("src/graph/graph.h").graph_core);
  EXPECT_TRUE(ClassifyPath("src/graph/graph.cc").graph_core);
  EXPECT_FALSE(ClassifyPath("src/graph/graph_io.cc").graph_core);
  EXPECT_FALSE(ClassifyPath("src/graph/graph_algorithms.cc").graph_core);
  EXPECT_FALSE(ClassifyPath("src/core/filtering.cc").graph_core);
}

// --- inline content edge cases -------------------------------------------

std::vector<Violation> LintSnippet(const std::string& path,
                                   const std::string& content) {
  std::vector<Violation> out;
  LintContent(path, content, ClassifyPath(path), &out);
  return out;
}

TEST(OsqLintContentTest, StringsAndCommentsAreInvisible) {
  EXPECT_TRUE(LintSnippet("src/x.cc",
                          "const char* s = \"std::cout << rand()\";\n"
                          "// printf(\"%d\", rand());\n"
                          "/* mu.lock(); system_clock */\n")
                  .empty());
}

TEST(OsqLintContentTest, JustifiedSuppressionSilences) {
  EXPECT_TRUE(
      LintSnippet("src/x.cc",
                  "void f() { std::cout << 1; }  "
                  "// NOLINT(osq-no-stdout): CLI-facing demo hook\n")
          .empty());
}

TEST(OsqLintContentTest, NonEmissionFileMayIterateUnordered) {
  const std::string code =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "int f() { int s = 0; for (const auto& kv : m) s += kv.second; "
      "return s; }\n";
  EXPECT_TRUE(LintSnippet("src/core/filtering.cc", code).empty());
  EXPECT_EQ(LintSnippet("src/core/kmatch.cc", code).size(), 1u);
}

TEST(OsqLintContentTest, UnorderedLocalInFilterScratchIsAllowedOffLayer) {
  // The same loop is a violation only where results are emitted.
  std::vector<Violation> vs = LintSnippet(
      "src/serve/result_cache.cc",
      "#include <unordered_set>\n"
      "std::unordered_set<int> keys_;\n"
      "void f(std::vector<int>* out) {\n"
      "  for (int k : keys_) out->push_back(k);\n"
      "}\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "osq-unordered-iter");
  EXPECT_EQ(vs[0].line, 4u);
}

TEST(OsqLintContentTest, RawLockThroughPointerAlwaysFlagged) {
  std::vector<Violation> vs = LintSnippet(
      "src/x.cc", "void f(std::mutex* m) { m->lock(); m->unlock(); }\n");
  EXPECT_EQ(CountRule(vs, "osq-raw-lock"), 2u);
}

TEST(OsqLintContentTest, GraphCoreMayTouchItsOwnArrays) {
  const std::string code =
      "size_t Graph::OutDegree(NodeId v) const {\n"
      "  return out_offsets_[v + 1] - out_offsets_[v];\n"
      "}\n";
  EXPECT_TRUE(LintSnippet("src/graph/graph.cc", code).empty());
  EXPECT_EQ(LintSnippet("src/core/filtering.cc", code).size(), 2u);
}

// --- flow rules (lock annotations, DESIGN.md §15) -------------------------

TEST(OsqLintFixtureTest, BadGuardedAccess) {
  std::vector<Violation> vs = LintFixture("bad_guarded_access.cc");
  // unguarded read + unguarded write + shared-mode write + write after
  // .unlock() + an OSQ_REQUIRES breach + an OSQ_EXCLUDES breach.
  EXPECT_EQ(CountRule(vs, "osq-guarded-access"), 6u);
  EXPECT_EQ(vs.size(), 6u);
}

TEST(OsqLintFixtureTest, CleanGuardedAccess) {
  EXPECT_TRUE(LintFixture("clean_guarded_access.cc").empty());
}

TEST(OsqLintFixtureTest, BadLockOrder) {
  std::vector<Violation> vs = LintFixture("bad_lock_order.cc");
  // The seeded serving-tier hazard (gate taken after the snapshot lock)
  // plus a transitive a->b->c inversion.
  ASSERT_EQ(CountRule(vs, "osq-lock-order"), 2u);
  EXPECT_EQ(vs.size(), 2u);
  EXPECT_NE(vs[0].message.find("writer_gate_"), std::string::npos)
      << vs[0].ToString();
}

TEST(OsqLintFixtureTest, CleanLockOrder) {
  EXPECT_TRUE(LintFixture("clean_lock_order.cc").empty());
}

TEST(OsqLintFixtureTest, BadLayering) {
  std::vector<Violation> core = LintFixture("bad_layering_core.cc");
  EXPECT_EQ(CountRule(core, "osq-layering"), 2u);  // serve + shard includes
  EXPECT_EQ(core.size(), 2u);
  std::vector<Violation> ingest = LintFixture("bad_layering_ingest.cc");
  EXPECT_EQ(CountRule(ingest, "osq-layering"), 1u);  // bypasses update_sink
  EXPECT_EQ(ingest.size(), 1u);
}

TEST(OsqLintFixtureTest, CleanLayeringShard) {
  EXPECT_TRUE(LintFixture("clean_layering_shard.cc").empty());
}

TEST(OsqLintFixtureTest, CleanRawStringLexing) {
  EXPECT_TRUE(LintFixture("clean_raw_string.cc").empty());
}

TEST(OsqLintFlowTest, DeferLockWithoutAcquireIsFlagged) {
  std::vector<Violation> vs = LintSnippet(
      "src/x.cc",
      "class C {\n"
      " public:\n"
      "  void F() {\n"
      "    std::unique_lock<std::mutex> lock(mu_, std::defer_lock);\n"
      "    v_ = 1;\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int v_ OSQ_GUARDED_BY(mu_) = 0;\n"
      "};\n");
  ASSERT_EQ(CountRule(vs, "osq-guarded-access"), 1u);
  EXPECT_EQ(vs[0].line, 5u);
}

TEST(OsqLintFlowTest, AdoptLockCountsAsHeldWithoutOrderEvent) {
  // adopt_lock adopts an acquisition made elsewhere (std::lock's
  // deadlock-avoidance), so the accesses are guarded and no
  // acquisition-order event fires even though the DAG orders b_ first.
  EXPECT_TRUE(LintSnippet("src/x.cc",
                          "class C {\n"
                          " public:\n"
                          "  void F() {\n"
                          "    std::lock(a_, b_);\n"
                          "    std::scoped_lock<std::mutex, std::mutex> g("
                          "std::adopt_lock, a_, b_);\n"
                          "    va_ = 1;\n"
                          "    vb_ = 2;\n"
                          "  }\n"
                          " private:\n"
                          "  std::mutex b_ OSQ_ACQUIRED_BEFORE(a_);\n"
                          "  std::mutex a_;\n"
                          "  int va_ OSQ_GUARDED_BY(a_) = 0;\n"
                          "  int vb_ OSQ_GUARDED_BY(b_) = 0;\n"
                          "};\n")
                  .empty());
}

TEST(OsqLintFlowTest, LockStateDoesNotLeakAcrossFunctions) {
  // Returning while the guard is live (RAII releases on unwind) must not
  // leave the NEXT function's body treated as locked.
  std::vector<Violation> vs = LintSnippet(
      "src/x.cc",
      "class C {\n"
      " public:\n"
      "  int Locked() {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "    return v_;\n"
      "  }\n"
      "  int Unlocked() { return v_; }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int v_ OSQ_GUARDED_BY(mu_) = 0;\n"
      "};\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].line, 7u);
}

TEST(OsqLintFlowTest, GuardDiesWithItsScope) {
  std::vector<Violation> vs = LintSnippet(
      "src/x.cc",
      "class C {\n"
      " public:\n"
      "  void F() {\n"
      "    {\n"
      "      std::lock_guard<std::mutex> lock(mu_);\n"
      "      v_ = 1;\n"
      "    }\n"
      "    v_ = 2;\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int v_ OSQ_GUARDED_BY(mu_) = 0;\n"
      "};\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].line, 8u);
}

TEST(OsqLintFlowTest, ConstructorAndDestructorAreExempt) {
  EXPECT_TRUE(LintSnippet("src/x.cc",
                          "class C {\n"
                          " public:\n"
                          "  C() { v_ = 1; }\n"
                          "  ~C() { v_ = 0; }\n"
                          " private:\n"
                          "  std::mutex mu_;\n"
                          "  int v_ OSQ_GUARDED_BY(mu_) = 0;\n"
                          "};\n")
                  .empty());
}

TEST(OsqLintFlowTest, OutOfLineMethodCheckedAgainstHeaderIndex) {
  // The .cc body is checked against annotations collected from the header
  // (LintTree/LintFile wiring) via the index-taking LintContent overload.
  AnnotationIndex index;
  CollectAnnotations(
      "class C {\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int v_ OSQ_GUARDED_BY(mu_) = 0;\n"
      "};\n",
      &index);
  std::vector<Violation> out;
  LintContent("src/x.cc", "int C::Get() { return v_; }\n",
              ClassifyPath("src/x.cc"), index, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule, "osq-guarded-access");
}

TEST(OsqLintContentTest, IdentifierEndingInRIsNotARawStringPrefix) {
  // Regression: STR_R"..." must lex as identifier + ordinary string; a
  // lexer that misreads it as a raw literal swallows the rest of the file
  // and hides the cout on the next line.
  std::vector<Violation> vs =
      LintSnippet("src/x.cc",
                  "const char* s = STR_R\"abc\";\n"
                  "void f() { std::cout << 1; }\n");
  EXPECT_EQ(CountRule(vs, "osq-no-stdout"), 1u);
}

TEST(OsqLintContentTest, EncodingPrefixedRawStringsAreBlanked) {
  EXPECT_TRUE(LintSnippet("src/x.cc",
                          "const char* a = u8R\"(std::cout << rand())\";\n"
                          "const char* b = LR\"x(printf(\"y\"))x\";\n")
                  .empty());
}

TEST(OsqLintContentTest, HeaderRuleSkipsSourceFiles) {
  // Definitions in .cc files are covered by the header declaration; the
  // nodiscard rule only fires on headers.
  EXPECT_TRUE(
      LintSnippet("src/core/index_io.cc", "Status SaveIndex(int x) {\n}\n")
          .empty());
  EXPECT_EQ(LintSnippet("src/core/index_io.h", "Status SaveIndex(int x);\n")
                .size(),
            1u);
}

}  // namespace
}  // namespace lint
}  // namespace osq
