#include "core/index_maintenance.h"

#include <set>

#include <gtest/gtest.h>
#include "common/rng.h"
#include "core/concept_graph.h"
#include "test_util.h"

namespace osq {
namespace {

// The Example VI.1-style scenario on the color fixture: build the index on
// a graph WITHOUT the olive->violet edge (coarse partition), insert it, and
// check the incremental repair reaches the batch-rebuild partition.
TEST(MaintenanceTest, InsertionSplitsAndPropagates) {
  test::ColorFixture f = test::MakeColorFixture();
  // Remove the edge that causes all splits; partition collapses to 3 blocks.
  ASSERT_TRUE(f.g.RemoveEdge(f.olive, f.violet, f.dict.Lookup("sim")));

  IndexOptions options;
  options.num_concept_graphs = 1;
  options.beta = 0.81;
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, options);
  ASSERT_TRUE(index.Validate());
  EXPECT_EQ(index.concept_graph(0).num_blocks(), 3u);

  MaintenanceStats stats;
  EXPECT_TRUE(ApplyUpdate(
      &f.g, &index,
      GraphUpdate::Insert(f.olive, f.violet, f.dict.Lookup("sim")), &stats));
  EXPECT_TRUE(index.Validate());
  EXPECT_EQ(index.concept_graph(0).num_blocks(), 6u);
  EXPECT_GT(stats.aff_blocks, 0u);
  EXPECT_EQ(stats.applied, 1u);

  // Equivalent to the batch rebuild.
  OntologyIndex batch = OntologyIndex::Build(f.g, f.o, options);
  EXPECT_EQ(index.concept_graph(0).num_blocks(),
            batch.concept_graph(0).num_blocks());
}

TEST(MaintenanceTest, DeletionMergesBack) {
  test::ColorFixture f = test::MakeColorFixture();
  IndexOptions options;
  options.num_concept_graphs = 1;
  options.beta = 0.81;
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, options);
  ASSERT_EQ(index.concept_graph(0).num_blocks(), 6u);

  MaintenanceStats stats;
  EXPECT_TRUE(ApplyUpdate(
      &f.g, &index,
      GraphUpdate::Delete(f.olive, f.violet, f.dict.Lookup("sim")), &stats));
  EXPECT_TRUE(index.Validate());
  // Without olive->violet the coarse 3-block partition is stable again;
  // the merge pass must find it.
  EXPECT_EQ(index.concept_graph(0).num_blocks(), 3u);
  EXPECT_GT(stats.merges, 0u);
}

TEST(MaintenanceTest, NoOpUpdatesSkipped) {
  test::ColorFixture f = test::MakeColorFixture();
  IndexOptions options;
  options.num_concept_graphs = 1;
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, options);
  MaintenanceStats stats;
  // Duplicate insertion.
  EXPECT_FALSE(ApplyUpdate(
      &f.g, &index,
      GraphUpdate::Insert(f.rose, f.blue, f.dict.Lookup("sim")), &stats));
  // Deleting a non-existent edge.
  EXPECT_FALSE(ApplyUpdate(
      &f.g, &index,
      GraphUpdate::Delete(f.rose, f.olive, f.dict.Lookup("sim")), &stats));
  EXPECT_EQ(stats.applied, 0u);
  EXPECT_EQ(stats.skipped, 2u);
  EXPECT_TRUE(index.Validate());
}

TEST(MaintenanceTest, InsertThenDeleteRestoresBlockCount) {
  test::TravelFixture f = test::MakeTravelFixture();
  IndexOptions options;
  options.num_concept_graphs = 2;
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, options);
  size_t before = 0;
  for (size_t i = 0; i < index.num_concept_graphs(); ++i) {
    before += index.concept_graph(i).num_blocks();
  }
  GraphUpdate ins = GraphUpdate::Insert(f.hp, f.rg, f.near);
  ASSERT_TRUE(ApplyUpdate(&f.g, &index, ins));
  EXPECT_TRUE(index.Validate());
  GraphUpdate del = GraphUpdate::Delete(f.hp, f.rg, f.near);
  ASSERT_TRUE(ApplyUpdate(&f.g, &index, del));
  EXPECT_TRUE(index.Validate());
  size_t after = 0;
  for (size_t i = 0; i < index.num_concept_graphs(); ++i) {
    after += index.concept_graph(i).num_blocks();
  }
  EXPECT_EQ(before, after);
}

TEST(MaintenanceTest, BatchUpdatesAggregateStats) {
  test::TravelFixture f = test::MakeTravelFixture();
  IndexOptions options;
  options.num_concept_graphs = 1;
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, options);
  std::vector<GraphUpdate> updates = {
      GraphUpdate::Insert(f.ht, f.starlight, f.fav),
      GraphUpdate::Insert(f.ht, f.starlight, f.fav),  // duplicate
      GraphUpdate::Delete(f.ht, f.starlight, f.fav),
  };
  MaintenanceStats stats = ApplyUpdates(&f.g, &index, updates);
  EXPECT_EQ(stats.applied, 2u);
  EXPECT_EQ(stats.skipped, 1u);
  EXPECT_TRUE(index.Validate());
  EXPECT_FALSE(f.g.HasEdge(f.ht, f.starlight, f.fav));
}

TEST(MaintenanceTest, AddNodeWithIndex) {
  test::TravelFixture f = test::MakeTravelFixture();
  IndexOptions options;
  options.num_concept_graphs = 2;
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, options);
  NodeId v = AddNodeWithIndex(&f.g, &index, f.dict.Lookup("holiday_cafe"));
  EXPECT_EQ(v, f.g.num_nodes() - 1);
  EXPECT_TRUE(index.Validate());
  // The new node can then participate in edge updates.
  ASSERT_TRUE(ApplyUpdate(&f.g, &index,
                          GraphUpdate::Insert(f.ct, v, f.fav)));
  EXPECT_TRUE(index.Validate());
}

TEST(MaintenanceTest, AddNodeWithBrandNewLabel) {
  test::TravelFixture f = test::MakeTravelFixture();
  IndexOptions options;
  options.num_concept_graphs = 1;
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, options);
  LabelId fresh = f.dict.Intern("spaceport");  // not in the ontology
  NodeId v = AddNodeWithIndex(&f.g, &index, fresh);
  EXPECT_TRUE(index.Validate());
  const ConceptGraph& cg = index.concept_graph(0);
  EXPECT_EQ(cg.BlockLabel(cg.BlockOf(v)), fresh);
}

TEST(MaintenanceTest, RandomStreamStaysValid) {
  test::TravelFixture f = test::MakeTravelFixture();
  IndexOptions options;
  options.num_concept_graphs = 2;
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, options);
  Rng rng(99);
  std::vector<LabelId> edge_labels = {f.guide, f.fav, f.near};
  for (int step = 0; step < 200; ++step) {
    NodeId u = static_cast<NodeId>(rng.Index(f.g.num_nodes()));
    NodeId w = static_cast<NodeId>(rng.Index(f.g.num_nodes()));
    if (u == w) continue;
    LabelId l = edge_labels[rng.Index(edge_labels.size())];
    GraphUpdate upd = rng.Bernoulli(0.5) ? GraphUpdate::Insert(u, w, l)
                                         : GraphUpdate::Delete(u, w, l);
    ApplyUpdate(&f.g, &index, upd);
    ASSERT_TRUE(index.Validate()) << "step " << step;
    ASSERT_TRUE(f.g.CheckConsistency()) << "step " << step;
  }
}

}  // namespace
}  // namespace osq
