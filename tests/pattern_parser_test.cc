#include "query/pattern_parser.h"

#include <fstream>

#include <gtest/gtest.h>
#include "graph/query_graph.h"

namespace osq {
namespace {

TEST(PatternParserTest, SingleNode) {
  LabelDictionary dict;
  ParsedPattern p;
  ASSERT_TRUE(ParsePattern("(a:museum)", &dict, &p).ok());
  EXPECT_EQ(p.query.num_nodes(), 1u);
  EXPECT_EQ(p.query.num_edges(), 0u);
  EXPECT_EQ(p.query.NodeLabel(p.node_ids.at("a")), dict.Lookup("museum"));
}

TEST(PatternParserTest, SimpleEdge) {
  LabelDictionary dict;
  ParsedPattern p;
  ASSERT_TRUE(
      ParsePattern("(t:tourists)-[guide]->(m:museum)", &dict, &p).ok());
  EXPECT_EQ(p.query.num_nodes(), 2u);
  EXPECT_TRUE(p.query.HasEdge(p.node_ids.at("t"), p.node_ids.at("m"),
                              dict.Lookup("guide")));
}

TEST(PatternParserTest, ReverseEdge) {
  LabelDictionary dict;
  ParsedPattern p;
  ASSERT_TRUE(ParsePattern("(m:museum)<-[guide]-(t:tourists)", &dict, &p).ok());
  EXPECT_TRUE(p.query.HasEdge(p.node_ids.at("t"), p.node_ids.at("m"),
                              dict.Lookup("guide")));
}

TEST(PatternParserTest, TravelQueryTriangle) {
  LabelDictionary dict;
  ParsedPattern p;
  ASSERT_TRUE(ParsePattern("(t:tourists)-[guide]->(m:museum), "
                           "(t)-[fav]->(r:moonlight), (r)-[near]->(m)",
                           &dict, &p)
                  .ok());
  EXPECT_EQ(p.query.num_nodes(), 3u);
  EXPECT_EQ(p.query.num_edges(), 3u);
  EXPECT_TRUE(ValidateQuery(p.query).ok());
}

TEST(PatternParserTest, ChainWithoutCommas) {
  LabelDictionary dict;
  ParsedPattern p;
  ASSERT_TRUE(
      ParsePattern("(a:x)-[r]->(b:y)-[s]->(c:z)", &dict, &p).ok());
  EXPECT_EQ(p.query.num_nodes(), 3u);
  EXPECT_EQ(p.query.num_edges(), 2u);
  EXPECT_TRUE(p.query.HasEdge(p.node_ids.at("b"), p.node_ids.at("c"),
                              dict.Lookup("s")));
}

TEST(PatternParserTest, DefaultEdgeLabel) {
  LabelDictionary dict;
  ParsedPattern p;
  ASSERT_TRUE(ParsePattern("(a:x)-[]->(b:y)", &dict, &p, "rel").ok());
  EXPECT_TRUE(
      p.query.HasEdge(p.node_ids.at("a"), p.node_ids.at("b"),
                      dict.Lookup("rel")));
}

TEST(PatternParserTest, CommentsAndWhitespace) {
  LabelDictionary dict;
  ParsedPattern p;
  ASSERT_TRUE(ParsePattern("  # a comment\n (a:x) -[r]-> (b:y) # tail\n",
                           &dict, &p)
                  .ok());
  EXPECT_EQ(p.query.num_edges(), 1u);
}

TEST(PatternParserTest, NodeReusePreservesIdentity) {
  LabelDictionary dict;
  ParsedPattern p;
  ASSERT_TRUE(
      ParsePattern("(a:x)-[r]->(b:y), (b)-[s]->(a)", &dict, &p).ok());
  EXPECT_EQ(p.query.num_nodes(), 2u);
  EXPECT_EQ(p.query.num_edges(), 2u);
}

TEST(PatternParserTest, RedeclarationWithSameLabelOk) {
  LabelDictionary dict;
  ParsedPattern p;
  ASSERT_TRUE(
      ParsePattern("(a:x)-[r]->(b:y), (a:x)-[s]->(b)", &dict, &p).ok());
  EXPECT_EQ(p.query.num_nodes(), 2u);
}

TEST(PatternParserTest, SelfLoop) {
  LabelDictionary dict;
  ParsedPattern p;
  ASSERT_TRUE(ParsePattern("(a:x)-[r]->(a)", &dict, &p).ok());
  EXPECT_TRUE(p.query.HasEdge(0, 0, dict.Lookup("r")));
}

TEST(PatternParserTest, ErrorMissingLabelOnFirstUse) {
  LabelDictionary dict;
  ParsedPattern p;
  Status s = ParsePattern("(a)-[r]->(b:y)", &dict, &p);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(PatternParserTest, ErrorConflictingRedeclaration) {
  LabelDictionary dict;
  ParsedPattern p;
  Status s = ParsePattern("(a:x)-[r]->(a:y)", &dict, &p);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(PatternParserTest, ErrorMalformedArrow) {
  LabelDictionary dict;
  ParsedPattern p;
  EXPECT_FALSE(ParsePattern("(a:x)-[r]-(b:y)", &dict, &p).ok());
  EXPECT_FALSE(ParsePattern("(a:x)->[r]->(b:y)", &dict, &p).ok());
}

TEST(PatternParserTest, ErrorDanglingComma) {
  LabelDictionary dict;
  ParsedPattern p;
  EXPECT_FALSE(ParsePattern("(a:x),", &dict, &p).ok());
}

TEST(PatternParserTest, ErrorEmptyPattern) {
  LabelDictionary dict;
  ParsedPattern p;
  EXPECT_FALSE(ParsePattern("", &dict, &p).ok());
  EXPECT_FALSE(ParsePattern("  # only a comment", &dict, &p).ok());
}

TEST(PatternParserTest, ErrorGarbageSuffix) {
  LabelDictionary dict;
  ParsedPattern p;
  Status s = ParsePattern("(a:x) junk", &dict, &p);
  EXPECT_FALSE(s.ok());
  // Offset is reported in the message.
  EXPECT_NE(s.message().find("offset"), std::string::npos);
}

TEST(PatternParserTest, OutputUntouchedOnError) {
  LabelDictionary dict;
  ParsedPattern p;
  ASSERT_TRUE(ParsePattern("(a:x)", &dict, &p).ok());
  EXPECT_FALSE(ParsePattern("(((", &dict, &p).ok());
  EXPECT_EQ(p.query.num_nodes(), 1u);  // still the previous parse
}

TEST(PatternParserTest, FormatRoundTrip) {
  LabelDictionary dict;
  ParsedPattern p;
  ASSERT_TRUE(ParsePattern("(t:tourists)-[guide]->(m:museum), "
                           "(t)-[fav]->(r:moonlight), (r)-[near]->(m)",
                           &dict, &p)
                  .ok());
  std::string text = FormatPattern(p.query, dict);
  ParsedPattern p2;
  ASSERT_TRUE(ParsePattern(text, &dict, &p2).ok()) << text;
  EXPECT_EQ(p2.query.num_nodes(), p.query.num_nodes());
  EXPECT_EQ(p2.query.num_edges(), p.query.num_edges());
}

TEST(PatternParserTest, FormatIsolatedNode) {
  LabelDictionary dict;
  Graph q;
  q.AddNode(dict.Intern("solo"));
  EXPECT_EQ(FormatPattern(q, dict), "(n0:solo)");
}


TEST(PatternParserTest, FormatRoundTripWithParallelEdges) {
  LabelDictionary dict;
  Graph q;
  q.AddNode(dict.Intern("a"));
  q.AddNode(dict.Intern("b"));
  q.AddEdge(0, 1, dict.Intern("r"));
  q.AddEdge(0, 1, dict.Intern("s"));
  std::string text = FormatPattern(q, dict);
  ParsedPattern p2;
  ASSERT_TRUE(ParsePattern(text, &dict, &p2).ok()) << text;
  EXPECT_EQ(p2.query.num_edges(), 2u);
}


TEST(PatternFileTest, LoadsMultiplePatterns) {
  std::string path = testing::TempDir() + "/osq_patterns_test.txt";
  {
    std::ofstream out(path);
    out << "# workload\n"
        << "(a:x)-[r]->(b:y)\n"
        << "\n"
        << "(a:x)-[r]->(b:y)-[s]->(c:z)\n";
  }
  LabelDictionary dict;
  std::vector<ParsedPattern> patterns;
  ASSERT_TRUE(LoadPatternsFromFile(path, &dict, &patterns).ok());
  ASSERT_EQ(patterns.size(), 2u);
  EXPECT_EQ(patterns[0].query.num_nodes(), 2u);
  EXPECT_EQ(patterns[1].query.num_nodes(), 3u);
}

TEST(PatternFileTest, ReportsLineNumberOnError) {
  std::string path = testing::TempDir() + "/osq_patterns_bad.txt";
  {
    std::ofstream out(path);
    out << "(a:x)\n(broken\n";
  }
  LabelDictionary dict;
  std::vector<ParsedPattern> patterns;
  Status s = LoadPatternsFromFile(path, &dict, &patterns);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
  EXPECT_TRUE(patterns.empty());
}

TEST(PatternFileTest, MissingFileIsIoError) {
  LabelDictionary dict;
  std::vector<ParsedPattern> patterns;
  EXPECT_EQ(LoadPatternsFromFile("/no/such/file", &dict, &patterns).code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace osq
