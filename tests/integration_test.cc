// End-to-end scenarios from the paper, exercised through the public API:
// the running travel example (Examples I.1, I.2, II.2, IV.3), the color
// concept-graph example (IV.1/IV.2) driven through the full engine, and
// the dynamic-update example (VI.1).

#include <set>
#include <utility>

#include <gtest/gtest.h>
#include "baseline/rewriting.h"
#include "baseline/simmatrix.h"
#include "baseline/subiso.h"
#include "core/query_engine.h"
#include "gen/scenarios.h"
#include "gen/query_gen.h"
#include "test_util.h"

namespace osq {
namespace {

// Example I.1: identical-label matching finds nothing, ontology-based
// querying finds the intended interpretation.
TEST(IntegrationTest, OntologyQueryingBeatsIdenticalMatching) {
  test::TravelFixture f = test::MakeTravelFixture();
  EXPECT_TRUE(SubIso(f.query, f.g, MatchSemantics::kInduced).empty());

  Graph query = f.query;
  QueryEngine engine(std::move(f.g), std::move(f.o), IndexOptions{});
  QueryOptions options;
  options.theta = 0.9;
  QueryResult r = engine.Query(query, options);
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_DOUBLE_EQ(r.matches[0].score, 2.7);  // Example II.2
}

// All three ontology-aware algorithms agree on the travel example.
TEST(IntegrationTest, AllAlgorithmsAgreeOnTravelExample) {
  test::TravelFixture f = test::MakeTravelFixture();
  SimilarityFunction sim(0.9);
  QueryOptions options;
  options.theta = 0.81;
  options.k = 0;

  std::vector<Match> rewrite =
      SubIsoRewrite(f.query, f.g, f.o, sim, options);
  SimMatrix m = BuildSimMatrix(f.query, f.g, f.o, sim, options.theta);
  std::vector<Match> vf2 = SimMatrixMatch(f.query, f.g, m, options);

  Graph query = f.query;
  QueryEngine engine(std::move(f.g), std::move(f.o), IndexOptions{});
  std::vector<Match> kmatch = engine.Query(query, options).matches;

  ASSERT_EQ(kmatch.size(), 2u);
  ASSERT_EQ(rewrite.size(), 2u);
  ASSERT_EQ(vf2.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(kmatch[i].mapping, rewrite[i].mapping);
    EXPECT_EQ(kmatch[i].mapping, vf2[i].mapping);
    EXPECT_DOUBLE_EQ(kmatch[i].score, rewrite[i].score);
    EXPECT_DOUBLE_EQ(kmatch[i].score, vf2[i].score);
  }
}

// Example VI.1-style dynamics through the engine facade: updates keep the
// index valid and immediately affect query results.
TEST(IntegrationTest, DynamicGraphScenario) {
  test::ColorFixture f = test::MakeColorFixture();
  LabelId sim_rel = f.dict.Lookup("sim");
  NodeId rose = f.rose;
  NodeId violet = f.violet;
  NodeId olive = f.olive;

  // Query: a red-ish node pointing at a blue-ish node.
  StringGraphBuilder qb(&f.dict);
  qb.AddNode("r", "red");
  qb.AddNode("b", "blue");
  qb.AddEdge("r", "b", "sim");
  Graph query = qb.TakeGraph();

  IndexOptions idx;
  idx.beta = 0.81;
  QueryEngine engine(std::move(f.g), std::move(f.o), idx);
  QueryOptions options;
  options.theta = 0.9;
  options.k = 0;
  // rose->blue, pink->sky, flame->violet all match (sim 0.9 + 0.9).
  EXPECT_EQ(engine.Query(query, options).matches.size(), 3u);

  // Delete rose->blue: one fewer match; index repaired incrementally.
  ASSERT_TRUE(engine.ApplyUpdate(
      GraphUpdate::Delete(rose, f.blue, sim_rel)));
  EXPECT_TRUE(engine.index().Validate());
  EXPECT_EQ(engine.Query(query, options).matches.size(), 2u);

  // Delete olive->violet (the Example VI.1 edge): still 2 matches, blocks
  // re-coarsen.
  ASSERT_TRUE(engine.ApplyUpdate(GraphUpdate::Delete(olive, violet, sim_rel)));
  EXPECT_TRUE(engine.index().Validate());
  EXPECT_EQ(engine.Query(query, options).matches.size(), 2u);
}

// The engine evaluates a generated workload end-to-end without violating
// any invariants, and never returns a match below theta.
TEST(IntegrationTest, GeneratedScenarioSmoke) {
  gen::ScenarioParams p;
  p.scale = 400;
  gen::Dataset ds = gen::MakeCrossDomainLike(p);
  Rng rng(3);
  gen::QueryGenParams qp;
  qp.num_nodes = 3;
  qp.generalize_prob = 0.6;

  std::vector<Graph> queries;
  for (int i = 0; i < 10; ++i) {
    Graph q = gen::ExtractQuery(ds.graph, ds.ontology, qp, &rng);
    if (!q.empty()) queries.push_back(std::move(q));
  }
  ASSERT_FALSE(queries.empty());

  IndexOptions idx;
  idx.num_concept_graphs = 2;
  QueryEngine engine(std::move(ds.graph), std::move(ds.ontology), idx);
  EXPECT_TRUE(engine.index().Validate());

  QueryOptions options;
  options.theta = 0.81;
  options.k = 10;
  for (const Graph& q : queries) {
    QueryResult r = engine.Query(q, options);
    ASSERT_TRUE(r.status.ok());
    for (const Match& m : r.matches) {
      EXPECT_GE(m.score,
                options.theta * static_cast<double>(q.num_nodes()) - 1e-9);
      // Mapping is a bijection onto distinct data nodes.
      std::set<NodeId> distinct(m.mapping.begin(), m.mapping.end());
      EXPECT_EQ(distinct.size(), q.num_nodes());
    }
    // Matches sorted best-first.
    for (size_t i = 1; i < r.matches.size(); ++i) {
      EXPECT_GE(r.matches[i - 1].score, r.matches[i].score - 1e-12);
    }
  }
}

}  // namespace
}  // namespace osq
