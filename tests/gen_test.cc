#include "gen/workload.h"

#include <algorithm>
#include <set>
#include <tuple>

#include <gtest/gtest.h>
#include "core/ontology_index.h"
#include "gen/churn.h"
#include "gen/query_gen.h"
#include "gen/scenarios.h"
#include "gen/synthetic.h"
#include "graph/graph_algorithms.h"
#include "graph/query_graph.h"

namespace osq {
namespace {

TEST(SyntheticGraphTest, RespectsRequestedSizes) {
  LabelDictionary dict;
  gen::SyntheticGraphParams p;
  p.num_nodes = 500;
  p.num_edges = 1500;
  p.num_labels = 30;
  Graph g = gen::MakeRandomGraph(p, &dict);
  EXPECT_EQ(g.num_nodes(), 500u);
  EXPECT_EQ(g.num_edges(), 1500u);
  EXPECT_TRUE(g.CheckConsistency());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LT(g.NodeLabel(v), 30u + 3u);  // labels + edge labels interned
  }
}

TEST(SyntheticGraphTest, DeterministicForSeed) {
  LabelDictionary d1;
  LabelDictionary d2;
  gen::SyntheticGraphParams p;
  p.seed = 42;
  Graph a = gen::MakeRandomGraph(p, &d1);
  Graph b = gen::MakeRandomGraph(p, &d2);
  EXPECT_EQ(a.EdgeList(), b.EdgeList());
}

TEST(SyntheticGraphTest, LabelSkewProducesImbalance) {
  LabelDictionary dict;
  gen::SyntheticGraphParams p;
  p.num_nodes = 2000;
  p.num_edges = 0;
  p.num_labels = 10;
  p.label_skew = 1.2;
  Graph g = gen::MakeRandomGraph(p, &dict);
  std::vector<size_t> counts(10, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ++counts[g.NodeLabel(v) - dict.Lookup("L0")];
  }
  EXPECT_GT(counts[0], counts[9] * 2);
}

TEST(SyntheticOntologyTest, ConnectedAndCoversLabels) {
  LabelDictionary dict;
  gen::SyntheticOntologyParams p;
  p.num_labels = 50;
  OntologyGraph o = gen::MakeTaxonomyOntology(p, &dict);
  EXPECT_EQ(o.num_labels(), 50u);
  EXPECT_GE(o.num_relations(), 49u);  // at least the tree backbone
  // Connected: every label reachable from label 0.
  LabelId l0 = dict.Lookup("L0");
  EXPECT_EQ(o.BallAround(l0, 1000).size(), 50u);
}

TEST(SyntheticOntologyTest, SharesLabelIdsWithGraph) {
  LabelDictionary dict;
  gen::SyntheticGraphParams gp;
  gp.num_labels = 20;
  Graph g = gen::MakeRandomGraph(gp, &dict);
  gen::SyntheticOntologyParams op;
  op.num_labels = 20;
  OntologyGraph o = gen::MakeTaxonomyOntology(op, &dict);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(o.ContainsLabel(g.NodeLabel(v)));
  }
}

TEST(QueryGenTest, ExtractedQueryIsConnectedInducedSubgraph) {
  LabelDictionary dict;
  gen::SyntheticGraphParams gp;
  gp.num_nodes = 200;
  gp.num_edges = 800;
  gp.num_labels = 15;
  Graph g = gen::MakeRandomGraph(gp, &dict);
  gen::SyntheticOntologyParams op;
  op.num_labels = 15;
  OntologyGraph o = gen::MakeTaxonomyOntology(op, &dict);
  Rng rng(5);
  gen::QueryGenParams qp;
  qp.num_nodes = 4;
  qp.generalize_prob = 0.0;  // keep original labels
  for (int i = 0; i < 20; ++i) {
    Graph q = gen::ExtractQuery(g, o, qp, &rng);
    ASSERT_FALSE(q.empty());
    EXPECT_EQ(q.num_nodes(), 4u);
    EXPECT_TRUE(IsWeaklyConnected(q));
  }
}

TEST(QueryGenTest, GeneralizationKeepsLabelsInOntology) {
  LabelDictionary dict;
  gen::SyntheticGraphParams gp;
  gp.num_nodes = 200;
  gp.num_edges = 800;
  gp.num_labels = 15;
  Graph g = gen::MakeRandomGraph(gp, &dict);
  gen::SyntheticOntologyParams op;
  op.num_labels = 15;
  OntologyGraph o = gen::MakeTaxonomyOntology(op, &dict);
  Rng rng(6);
  gen::QueryGenParams qp;
  qp.num_nodes = 4;
  qp.generalize_prob = 1.0;
  qp.generalize_hops = 2;
  Graph q = gen::ExtractQuery(g, o, qp, &rng);
  ASSERT_FALSE(q.empty());
  for (NodeId u = 0; u < q.num_nodes(); ++u) {
    EXPECT_TRUE(o.ContainsLabel(q.NodeLabel(u)));
  }
}

TEST(QueryGenTest, ImpossibleSizeReturnsEmpty) {
  LabelDictionary dict;
  Graph g;
  g.AddNode(dict.Intern("a"));
  OntologyGraph o;
  Rng rng(7);
  gen::QueryGenParams qp;
  qp.num_nodes = 5;
  EXPECT_TRUE(gen::ExtractQuery(g, o, qp, &rng).empty());
}

TEST(ScenarioTest, CrossDomainLikeShape) {
  gen::ScenarioParams p;
  p.scale = 800;
  gen::Dataset ds = gen::MakeCrossDomainLike(p);
  EXPECT_EQ(ds.graph.num_nodes(), 800u);
  EXPECT_GT(ds.graph.num_edges(), 2000u);
  EXPECT_GT(ds.ontology.num_labels(), 100u);
  EXPECT_TRUE(ds.graph.CheckConsistency());
  // Every data label is an ontology concept.
  for (NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    EXPECT_TRUE(ds.ontology.ContainsLabel(ds.graph.NodeLabel(v)));
  }
}

TEST(ScenarioTest, FlickrLikeShape) {
  gen::ScenarioParams p;
  p.scale = 800;
  gen::Dataset ds = gen::MakeFlickrLike(p);
  EXPECT_GT(ds.graph.num_nodes(), 700u);
  EXPECT_GT(ds.graph.num_edges(), ds.graph.num_nodes());
  EXPECT_TRUE(ds.graph.CheckConsistency());
  for (NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    EXPECT_TRUE(ds.ontology.ContainsLabel(ds.graph.NodeLabel(v)));
  }
  // Photos dominate.
  LabelId photo = ds.dict.Lookup("photo");
  size_t photos = 0;
  for (NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    if (ds.graph.NodeLabel(v) == photo) ++photos;
  }
  EXPECT_GT(photos, ds.graph.num_nodes() / 3);
}

TEST(ScenarioTest, CatalogLikeShape) {
  gen::ScenarioParams p;
  p.scale = 800;
  gen::Dataset ds = gen::MakeCatalogLike(p);
  EXPECT_EQ(ds.graph.num_nodes(), 800u);
  EXPECT_GT(ds.graph.num_edges(), ds.graph.num_nodes());
  EXPECT_TRUE(ds.graph.CheckConsistency());
  for (NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    EXPECT_TRUE(ds.ontology.ContainsLabel(ds.graph.NodeLabel(v)));
  }
  // The scenario's purpose: hub/spoke symmetry keeps partition refinement
  // coarse (the other scenarios collapse to near-singleton blocks), so the
  // candidate index's node-level check has blocks with intra-block degree
  // variance to prune.  Guard the coarseness, not an exact block count.
  IndexOptions idx;
  idx.num_concept_graphs = 2;
  OntologyIndex index = OntologyIndex::Build(ds.graph, ds.ontology, idx);
  EXPECT_LT(index.concept_graph(0).AliveBlocks().size(),
            ds.graph.num_nodes() / 10);
}

TEST(ScenarioTest, CommunityLikeShape) {
  gen::ScenarioParams p;
  p.scale = 800;
  gen::Dataset ds = gen::MakeCommunityLike(p);
  // Scale rounds to whole communities of 100.
  EXPECT_EQ(ds.graph.num_nodes(), 800u);
  EXPECT_GT(ds.graph.num_edges(), 2000u);
  EXPECT_TRUE(ds.graph.CheckConsistency());
  for (NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    EXPECT_TRUE(ds.ontology.ContainsLabel(ds.graph.NodeLabel(v)));
  }
  // The defining property: every edge stays inside a community or spans
  // exactly one ring-adjacent boundary — this is what keeps range-shard
  // halos thin in the sharded serving tier.
  const size_t kCommunity = 100;
  const size_t num_comm = ds.graph.num_nodes() / kCommunity;
  size_t intra = 0;
  for (const EdgeTriple& e : ds.graph.EdgeList()) {
    size_t cu = e.from / kCommunity;
    size_t cv = e.to / kCommunity;
    size_t ring_dist = cu >= cv ? cu - cv : cv - cu;
    ring_dist = std::min(ring_dist, num_comm - ring_dist);
    EXPECT_LE(ring_dist, 1u) << "edge spans non-adjacent communities";
    if (ring_dist == 0) ++intra;
  }
  // Most edges are intra-community.
  EXPECT_GT(intra, ds.graph.num_edges() * 9 / 10);
}

TEST(ScenarioTest, CommunityLikeDeterministicForSeed) {
  gen::ScenarioParams p;
  p.scale = 300;
  p.seed = 21;
  gen::Dataset a = gen::MakeCommunityLike(p);
  gen::Dataset b = gen::MakeCommunityLike(p);
  ASSERT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.graph.EdgeList(), b.graph.EdgeList());
  for (NodeId v = 0; v < a.graph.num_nodes(); ++v) {
    EXPECT_EQ(a.graph.NodeLabel(v), b.graph.NodeLabel(v));
  }
}

TEST(WorkloadTest, CommunityWorkloadPopulated) {
  gen::ScenarioParams p;
  p.scale = 600;
  gen::Workload w = gen::MakeCommunityWorkload(p, 5);
  ASSERT_EQ(w.templates.size(), 4u);
  EXPECT_EQ(w.name, "Community");
  for (const auto& t : w.templates) {
    EXPECT_GE(t.queries.size(), 1u) << t.name;
    for (const Graph& q : t.queries) {
      EXPECT_TRUE(ValidateQuery(q).ok());
    }
  }
}

TEST(WorkloadTest, CrossDomainWorkloadPopulated) {
  gen::ScenarioParams p;
  p.scale = 600;
  gen::Workload w = gen::MakeCrossDomainWorkload(p, 5);
  ASSERT_EQ(w.templates.size(), 5u);
  EXPECT_EQ(w.templates[0].name, "QT1");
  for (const auto& t : w.templates) {
    EXPECT_EQ(t.queries.size(), 5u) << t.name;
    for (const Graph& q : t.queries) {
      EXPECT_TRUE(ValidateQuery(q).ok());
      EXPECT_EQ(q.num_nodes(), t.params.num_nodes);
    }
  }
}

TEST(ChurnStreamTest, DeterministicForSeed) {
  gen::ScenarioParams p;
  p.scale = 300;
  gen::Dataset ds = gen::MakeFlickrLike(p);
  gen::ChurnParams cp;
  cp.seed = 23;
  gen::ChurnStream a(ds.graph, cp);
  gen::ChurnStream b(ds.graph, cp);
  (void)a.Next(50);
  (void)b.Next(30);
  (void)b.Next(20);  // chunking must not change the stream
  ASSERT_EQ(a.history().size(), b.history().size());
  for (size_t i = 0; i < a.history().size(); ++i) {
    EXPECT_EQ(a.history()[i].kind, b.history()[i].kind);
    EXPECT_EQ(a.history()[i].edge.from, b.history()[i].edge.from);
    EXPECT_EQ(a.history()[i].edge.to, b.history()[i].edge.to);
    EXPECT_EQ(a.history()[i].edge.label, b.history()[i].edge.label);
  }
  EXPECT_EQ(a.live_edges(), b.live_edges());
}

// The replay property the ingest differential oracle builds on: applying
// history() in order with skip semantics over the seed graph lands on the
// stream's own live-edge bookkeeping.  Duplicates (and only duplicates)
// show up as skipped no-ops.
TEST(ChurnStreamTest, HistoryReplayMatchesLiveSet) {
  gen::ScenarioParams p;
  p.scale = 300;
  gen::Dataset ds = gen::MakeFlickrLike(p);
  gen::ChurnParams cp;
  cp.seed = 29;
  cp.duplicate_fraction = 0.5;  // force plenty of re-deliveries
  gen::ChurnStream churn(ds.graph, cp);
  (void)churn.Next(120);

  std::set<std::tuple<NodeId, NodeId, LabelId>> live;
  for (const EdgeTriple& e : ds.graph.EdgeList()) {
    live.insert({e.from, e.to, e.label});
  }
  size_t skipped = 0;
  GraphUpdate prev = churn.history().front();
  bool have_prev = false;
  for (const GraphUpdate& u : churn.history()) {
    auto key = std::make_tuple(u.edge.from, u.edge.to, u.edge.label);
    bool changed = u.kind == GraphUpdate::Kind::kInsertEdge
                       ? live.insert(key).second
                       : live.erase(key) > 0;
    if (!changed) {
      ++skipped;
      // Only an exact re-delivery of the previous update may no-op.
      ASSERT_TRUE(have_prev);
      EXPECT_EQ(prev.kind, u.kind);
      EXPECT_EQ(std::make_tuple(prev.edge.from, prev.edge.to,
                                prev.edge.label),
                key);
    }
    prev = u;
    have_prev = true;
  }
  EXPECT_GT(skipped, 0u);  // duplicate_fraction 0.5 over 120+ updates
  EXPECT_EQ(live.size(), churn.live_edges());
}

TEST(ChurnStreamTest, PureDriftKeepsEndpointsAndMovesLabels) {
  gen::ScenarioParams p;
  p.scale = 300;
  gen::Dataset ds = gen::MakeFlickrLike(p);
  gen::ChurnParams cp;
  cp.seed = 31;
  cp.growth_fraction = 0.0;
  cp.drift_fraction = 1.0;
  cp.duplicate_fraction = 0.0;
  gen::ChurnStream churn(ds.graph, cp);
  std::vector<GraphUpdate> updates = churn.Next(40);
  ASSERT_FALSE(updates.empty());
  size_t drift_pairs = 0;
  for (size_t i = 0; i + 1 < updates.size(); ++i) {
    if (updates[i].kind != GraphUpdate::Kind::kDeleteEdge ||
        updates[i + 1].kind != GraphUpdate::Kind::kInsertEdge) {
      continue;
    }
    if (updates[i].edge.from == updates[i + 1].edge.from &&
        updates[i].edge.to == updates[i + 1].edge.to) {
      EXPECT_NE(updates[i].edge.label, updates[i + 1].edge.label);
      ++drift_pairs;
    }
  }
  // All-drift mix: nearly every step re-types an edge in place (a step
  // degrades to decay only when the drifted triple already exists).
  EXPECT_GT(drift_pairs, 20u);
}

TEST(WorkloadTest, FlickrWorkloadPopulated) {
  gen::ScenarioParams p;
  p.scale = 600;
  gen::Workload w = gen::MakeFlickrWorkload(p, 5);
  ASSERT_EQ(w.templates.size(), 4u);
  EXPECT_EQ(w.templates[0].name, "QT6");
  for (const auto& t : w.templates) {
    EXPECT_GE(t.queries.size(), 1u) << t.name;
  }
}

}  // namespace
}  // namespace osq
