#include "graph/graph_algorithms.h"

#include <gtest/gtest.h>

namespace osq {
namespace {

Graph Path(size_t n) {
  Graph g;
  g.AddNodes(n, 0);
  for (NodeId v = 0; v + 1 < n; ++v) {
    g.AddEdge(v, v + 1, 0);
  }
  return g;
}

TEST(BfsTest, DistancesOnDirectedPath) {
  Graph g = Path(5);
  std::vector<uint32_t> d = BfsDistances(g, 0);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(d[i], i);
  }
}

TEST(BfsTest, DirectedBfsRespectsDirection) {
  Graph g = Path(3);
  std::vector<uint32_t> d = BfsDistances(g, 2);
  EXPECT_EQ(d[2], 0u);
  EXPECT_EQ(d[1], kUnreachable);
  EXPECT_EQ(d[0], kUnreachable);
}

TEST(BfsTest, UndirectedBfsIgnoresDirection) {
  Graph g = Path(3);
  std::vector<uint32_t> d = UndirectedBfsDistances(g, 2);
  EXPECT_EQ(d[2], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[0], 2u);
}

TEST(BfsTest, DisconnectedNodeUnreachable) {
  Graph g = Path(3);
  g.AddNode(0);  // isolated
  std::vector<uint32_t> d = BfsDistances(g, 0);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(BfsTest, ShortestPathChosenOverLonger) {
  Graph g;
  g.AddNodes(4, 0);
  g.AddEdge(0, 1, 0);
  g.AddEdge(1, 3, 0);
  g.AddEdge(0, 3, 0);  // shortcut
  std::vector<uint32_t> d = BfsDistances(g, 0);
  EXPECT_EQ(d[3], 1u);
}

TEST(ConnectivityTest, PathIsWeaklyConnected) {
  EXPECT_TRUE(IsWeaklyConnected(Path(4)));
}

TEST(ConnectivityTest, EmptyGraphNotConnected) {
  EXPECT_FALSE(IsWeaklyConnected(Graph()));
}

TEST(ConnectivityTest, SingleNodeConnected) {
  Graph g;
  g.AddNode(0);
  EXPECT_TRUE(IsWeaklyConnected(g));
}

TEST(ConnectivityTest, TwoComponentsNotConnected) {
  Graph g = Path(3);
  g.AddNode(0);
  EXPECT_FALSE(IsWeaklyConnected(g));
}

TEST(ComponentsTest, CountsAndLabelsComponents) {
  Graph g = Path(3);       // component 0: {0,1,2}
  NodeId a = g.AddNode(0);  // component 1: {3,4}
  NodeId b = g.AddNode(0);
  g.AddEdge(b, a, 0);
  g.AddNode(0);  // component 2: {5}
  size_t n = 0;
  std::vector<uint32_t> comp = WeakComponents(g, &n);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[0], comp[5]);
  EXPECT_NE(comp[3], comp[5]);
}

TEST(ComponentsTest, NullCountAccepted) {
  Graph g = Path(2);
  std::vector<uint32_t> comp = WeakComponents(g, nullptr);
  EXPECT_EQ(comp[0], comp[1]);
}

}  // namespace
}  // namespace osq
