#include "baseline/rewriting.h"

#include <gtest/gtest.h>
#include "test_util.h"

namespace osq {
namespace {

TEST(RewritingTest, FindsTravelExampleMatches) {
  test::TravelFixture f = test::MakeTravelFixture();
  SimilarityFunction sim(0.9);
  QueryOptions options;
  options.theta = 0.81;
  options.k = 10;
  RewriteStats stats;
  std::vector<Match> matches =
      SubIsoRewrite(f.query, f.g, f.o, sim, options, 0, &stats);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_DOUBLE_EQ(matches[0].score, 2.7);
  EXPECT_EQ(matches[0].mapping[f.q_museum], f.rg);
  EXPECT_NEAR(matches[1].score, 2.61, 1e-12);
  EXPECT_GT(stats.rewritings, 1u);
}

TEST(RewritingTest, CombinationCountIsProductOfChoices) {
  test::TravelFixture f = test::MakeTravelFixture();
  SimilarityFunction sim(0.9);
  QueryOptions options;
  options.theta = 0.9;  // radius 1
  options.k = 0;
  RewriteStats stats;
  SubIsoRewrite(f.query, f.g, f.o, sim, options, 0, &stats);
  // Candidate labels present in G within 1 hop:
  //   tourists: {culture_tours, holiday_tours}            -> 2
  //   museum:   {royal_gallery}                           -> 1
  //   moonlight:{starlight, holiday_cafe, holiday_plaza}  -> 3
  EXPECT_EQ(stats.combinations, 6u);
  EXPECT_EQ(stats.rewritings, 6u);
  EXPECT_FALSE(stats.truncated);
}

TEST(RewritingTest, ThetaOneOnlyOriginalLabels) {
  test::TravelFixture f = test::MakeTravelFixture();
  SimilarityFunction sim(0.9);
  QueryOptions options;
  options.theta = 1.0;
  RewriteStats stats;
  std::vector<Match> matches =
      SubIsoRewrite(f.query, f.g, f.o, sim, options, 0, &stats);
  // Query labels do not occur in G at all -> no candidate labels.
  EXPECT_TRUE(matches.empty());
  EXPECT_EQ(stats.rewritings, 0u);
}

TEST(RewritingTest, MaxRewritingsTruncates) {
  test::TravelFixture f = test::MakeTravelFixture();
  SimilarityFunction sim(0.9);
  QueryOptions options;
  options.theta = 0.81;
  RewriteStats stats;
  SubIsoRewrite(f.query, f.g, f.o, sim, options, /*max_rewritings=*/2,
                &stats);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.rewritings, 2u);
}

TEST(RewritingTest, TruncationKeepsBestFirstOrdering) {
  // Choices are sorted best-similarity-first, so even a truncated run must
  // have evaluated the all-original-labels rewriting first.
  test::TravelFixture f = test::MakeTravelFixture();
  SimilarityFunction sim(0.9);
  QueryOptions options;
  options.theta = 0.81;
  options.k = 1;
  RewriteStats stats;
  std::vector<Match> best =
      SubIsoRewrite(f.query, f.g, f.o, sim, options, 1, &stats);
  // The single evaluated rewriting is the most similar label combination;
  // for this query it is exactly the combination realizing score 2.7.
  ASSERT_EQ(best.size(), 1u);
  EXPECT_DOUBLE_EQ(best[0].score, 2.7);
}

TEST(RewritingTest, KCapsResults) {
  test::TravelFixture f = test::MakeTravelFixture();
  SimilarityFunction sim(0.9);
  QueryOptions options;
  options.theta = 0.81;
  options.k = 1;
  std::vector<Match> matches =
      SubIsoRewrite(f.query, f.g, f.o, sim, options);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_DOUBLE_EQ(matches[0].score, 2.7);
}

TEST(RewritingTest, EmptyQuery) {
  test::TravelFixture f = test::MakeTravelFixture();
  SimilarityFunction sim(0.9);
  EXPECT_TRUE(
      SubIsoRewrite(Graph(), f.g, f.o, sim, QueryOptions{}).empty());
}

}  // namespace
}  // namespace osq
