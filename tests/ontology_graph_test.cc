#include "ontology/ontology_graph.h"

#include <algorithm>

#include <gtest/gtest.h>
#include "test_util.h"

namespace osq {
namespace {

TEST(OntologyGraphTest, StartsEmpty) {
  OntologyGraph o;
  EXPECT_EQ(o.num_labels(), 0u);
  EXPECT_EQ(o.num_relations(), 0u);
}

TEST(OntologyGraphTest, AddLabelIdempotent) {
  OntologyGraph o;
  o.AddLabel(3);
  o.AddLabel(3);
  EXPECT_EQ(o.num_labels(), 1u);
  EXPECT_TRUE(o.ContainsLabel(3));
  EXPECT_FALSE(o.ContainsLabel(2));
}

TEST(OntologyGraphTest, AddRelationRegistersEndpoints) {
  OntologyGraph o;
  EXPECT_TRUE(o.AddRelation(1, 5));
  EXPECT_EQ(o.num_labels(), 2u);
  EXPECT_EQ(o.num_relations(), 1u);
  EXPECT_TRUE(o.ContainsLabel(1));
  EXPECT_TRUE(o.ContainsLabel(5));
}

TEST(OntologyGraphTest, RelationIsUndirected) {
  OntologyGraph o;
  o.AddRelation(1, 2);
  EXPECT_EQ(o.Neighbors(1), std::vector<LabelId>{2});
  EXPECT_EQ(o.Neighbors(2), std::vector<LabelId>{1});
}

TEST(OntologyGraphTest, DuplicateAndSelfRelationRejected) {
  OntologyGraph o;
  EXPECT_TRUE(o.AddRelation(1, 2));
  EXPECT_FALSE(o.AddRelation(2, 1));  // same undirected edge
  EXPECT_FALSE(o.AddRelation(3, 3));  // self loop
  EXPECT_EQ(o.num_relations(), 1u);
}

TEST(OntologyGraphTest, LabelsSorted) {
  OntologyGraph o;
  o.AddLabel(9);
  o.AddLabel(2);
  o.AddLabel(5);
  EXPECT_EQ(o.Labels(), (std::vector<LabelId>{2, 5, 9}));
}

TEST(OntologyGraphTest, DistanceBasics) {
  OntologyGraph o;
  o.AddRelation(0, 1);
  o.AddRelation(1, 2);
  o.AddRelation(2, 3);
  EXPECT_EQ(o.Distance(0, 0, 10), 0u);
  EXPECT_EQ(o.Distance(0, 1, 10), 1u);
  EXPECT_EQ(o.Distance(0, 3, 10), 3u);
  EXPECT_EQ(o.Distance(3, 0, 10), 3u);  // symmetric
}

TEST(OntologyGraphTest, DistanceRespectsCap) {
  OntologyGraph o;
  o.AddRelation(0, 1);
  o.AddRelation(1, 2);
  EXPECT_EQ(o.Distance(0, 2, 1), kInfiniteDistance);
  EXPECT_EQ(o.Distance(0, 2, 2), 2u);
}

TEST(OntologyGraphTest, DistanceIdenticalUnknownLabelIsZero) {
  OntologyGraph o;
  o.AddRelation(0, 1);
  // Label 9 is not an ontology node but dist(l, l) == 0 by definition.
  EXPECT_EQ(o.Distance(9, 9, 5), 0u);
}

TEST(OntologyGraphTest, DistanceToUnknownLabelInfinite) {
  OntologyGraph o;
  o.AddRelation(0, 1);
  EXPECT_EQ(o.Distance(0, 9, 5), kInfiniteDistance);
}

TEST(OntologyGraphTest, DistanceAcrossComponentsInfinite) {
  OntologyGraph o;
  o.AddRelation(0, 1);
  o.AddRelation(2, 3);
  EXPECT_EQ(o.Distance(0, 3, 100), kInfiniteDistance);
}

TEST(OntologyGraphTest, DistancePicksShortestPath) {
  OntologyGraph o;
  o.AddRelation(0, 1);
  o.AddRelation(1, 2);
  o.AddRelation(0, 2);  // shortcut
  EXPECT_EQ(o.Distance(0, 2, 10), 1u);
}

TEST(OntologyGraphTest, BallAroundRadiusZero) {
  OntologyGraph o;
  o.AddRelation(0, 1);
  std::vector<LabelDistance> ball = o.BallAround(0, 0);
  ASSERT_EQ(ball.size(), 1u);
  EXPECT_EQ(ball[0], (LabelDistance{0, 0}));
}

TEST(OntologyGraphTest, BallAroundCollectsByDistance) {
  OntologyGraph o;
  o.AddRelation(0, 1);
  o.AddRelation(1, 2);
  o.AddRelation(2, 3);
  std::vector<LabelDistance> ball = o.BallAround(0, 2);
  ASSERT_EQ(ball.size(), 3u);
  EXPECT_EQ(ball[0], (LabelDistance{0, 0}));
  EXPECT_EQ(ball[1], (LabelDistance{1, 1}));
  EXPECT_EQ(ball[2], (LabelDistance{2, 2}));
}

TEST(OntologyGraphTest, BallAroundUnknownSourceEmpty) {
  OntologyGraph o;
  o.AddRelation(0, 1);
  EXPECT_TRUE(o.BallAround(42, 3).empty());
}

TEST(OntologyGraphTest, NeighborsOfUnknownLabelEmpty) {
  OntologyGraph o;
  EXPECT_TRUE(o.Neighbors(7).empty());
}

TEST(OntologyGraphTest, FileRoundTrip) {
  test::TravelFixture f = test::MakeTravelFixture();
  std::string path = testing::TempDir() + "/osq_ontology_test.graph";
  ASSERT_TRUE(SaveOntology(f.o, f.dict, path).ok());
  OntologyGraph o2;
  ASSERT_TRUE(LoadOntologyFromFile(path, &f.dict, &o2).ok());
  EXPECT_EQ(o2.num_labels(), f.o.num_labels());
  EXPECT_EQ(o2.num_relations(), f.o.num_relations());
  // Same distances on the shared dictionary.
  LabelId museum = f.dict.Lookup("museum");
  LabelId disney = f.dict.Lookup("disneyland");
  EXPECT_EQ(o2.Distance(museum, disney, 10), f.o.Distance(museum, disney, 10));
}

TEST(OntologyGraphTest, TravelFixtureDistancesMatchPaper) {
  test::TravelFixture f = test::MakeTravelFixture();
  LabelId museum = f.dict.Lookup("museum");
  LabelId rg = f.dict.Lookup("royal_gallery");
  LabelId disney = f.dict.Lookup("disneyland");
  EXPECT_EQ(f.o.Distance(museum, rg, 10), 1u);      // RG is a kind of museum
  EXPECT_EQ(f.o.Distance(museum, disney, 10), 2u);  // sim == 0.81 in paper
}

}  // namespace
}  // namespace osq
