// Shared test fixtures encoding the paper's running examples.
//
// TravelFixture: the social travel network of Fig. 1 with the travel
// ontology of Fig. 2 and the query Q ("tourists who recommend museum tours
// with guide services and favor a restaurant close to the museum").  The
// restaurant the OCR of the paper leaves blank is named "starlight" here.
// Distances are arranged so the paper's numbers hold exactly:
//   sim(museum, royal_gallery) = 0.9      (Example I.2 / II.2)
//   sim(museum, disneyland)    = 0.81     (Example II.1)
//   best match {RG, CT, starlight} scores 0.9 * 3 = 2.7 (Example II.2)
//
// ColorFixture: the color graph G_c and ontology O_gc of Fig. 3, with data
// edges arranged so that CGraph refinement reproduces the final concept
// graph of Example IV.2 / Fig. 5: {rose,pink} {flame} {blue,sky} {violet}
// {green,lime} {olive}.

#ifndef OSQ_TESTS_TEST_UTIL_H_
#define OSQ_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/label_dictionary.h"
#include "graph/query_graph.h"
#include "ontology/ontology_graph.h"

namespace osq {
namespace test {

struct TravelFixture {
  LabelDictionary dict;
  Graph g;
  OntologyGraph o;
  Graph query;
  // Data node ids.
  NodeId ct, rg, starlight, ht, disneyland, hc, hp, rp;
  // Query node ids.
  NodeId q_tourists, q_museum, q_moonlight;
  // Edge label ids.
  LabelId guide, fav, near;
};

inline TravelFixture MakeTravelFixture() {
  TravelFixture f;
  LabelDictionary* d = &f.dict;

  // Ontology O_g (Fig. 2): one hop from each query term to its matches.
  auto rel = [&](const std::string& a, const std::string& b) {
    f.o.AddRelation(d->Intern(a), d->Intern(b));
  };
  rel("museum", "royal_gallery");   // RG is a kind of museum
  rel("museum", "attractions");
  rel("museum", "park");
  rel("park", "disneyland");        // dist(museum, disneyland) == 2
  rel("attractions", "park");
  rel("tourists", "culture_tours");
  rel("tourists", "holiday_tours");
  rel("moonlight", "starlight");    // renamed restaurant, dist 1
  rel("moonlight", "holiday_cafe");
  rel("moonlight", "holiday_plaza");
  rel("leisure_center", "holiday_plaza");
  rel("leisure_center", "royal_palace");

  // Data graph G (Fig. 1).
  StringGraphBuilder gb(d);
  auto node = [&](const std::string& name) { return gb.AddNode(name, name); };
  f.ct = node("culture_tours");
  f.rg = node("royal_gallery");
  f.starlight = node("starlight");
  f.ht = node("holiday_tours");
  f.disneyland = node("disneyland");
  f.hc = node("holiday_cafe");
  f.hp = node("holiday_plaza");
  f.rp = node("royal_palace");
  gb.AddEdge("culture_tours", "royal_gallery", "guide");
  gb.AddEdge("culture_tours", "starlight", "fav");
  gb.AddEdge("starlight", "royal_gallery", "near");
  gb.AddEdge("holiday_tours", "disneyland", "guide");
  gb.AddEdge("holiday_tours", "holiday_cafe", "fav");
  gb.AddEdge("holiday_cafe", "disneyland", "near");
  gb.AddEdge("holiday_plaza", "disneyland", "near");
  gb.AddEdge("royal_palace", "royal_gallery", "near");
  f.g = gb.TakeGraph();

  // Query Q (Fig. 1).
  StringGraphBuilder qb(d);
  f.q_tourists = qb.AddNode("q_tourists", "tourists");
  f.q_museum = qb.AddNode("q_museum", "museum");
  f.q_moonlight = qb.AddNode("q_moonlight", "moonlight");
  qb.AddEdge("q_tourists", "q_museum", "guide");
  qb.AddEdge("q_tourists", "q_moonlight", "fav");
  qb.AddEdge("q_moonlight", "q_museum", "near");
  f.query = qb.TakeGraph();

  f.guide = d->Lookup("guide");
  f.fav = d->Lookup("fav");
  f.near = d->Lookup("near");
  return f;
}

struct ColorFixture {
  LabelDictionary dict;
  Graph g;
  OntologyGraph o;
  // Node ids by color name, in the order added below.
  NodeId rose, pink, flame, blue, sky, violet, green, lime, olive;
  LabelId red_label, blue_label, green_label;
};

inline ColorFixture MakeColorFixture() {
  ColorFixture f;
  LabelDictionary* d = &f.dict;
  // Ontology O_gc: star around each primary color.
  auto rel = [&](const std::string& a, const std::string& b) {
    f.o.AddRelation(d->Intern(a), d->Intern(b));
  };
  rel("red", "rose");
  rel("red", "pink");
  rel("red", "flame");
  rel("blue", "sky");
  rel("blue", "violet");
  rel("green", "lime");
  rel("green", "olive");
  // Keep the ontology connected like Fig. 3 (primaries relate).
  rel("red", "blue");
  rel("blue", "green");

  StringGraphBuilder gb(d);
  f.rose = gb.AddNode("n_rose", "rose");
  f.pink = gb.AddNode("n_pink", "pink");
  f.flame = gb.AddNode("n_flame", "flame");
  f.blue = gb.AddNode("n_blue", "blue");
  f.sky = gb.AddNode("n_sky", "sky");
  f.violet = gb.AddNode("n_violet", "violet");
  f.green = gb.AddNode("n_green", "green");
  f.lime = gb.AddNode("n_lime", "lime");
  f.olive = gb.AddNode("n_olive", "olive");
  // Data edges chosen so refinement reproduces Fig. 5's final partition.
  gb.AddEdge("n_rose", "n_blue", "sim");
  gb.AddEdge("n_pink", "n_sky", "sim");
  gb.AddEdge("n_flame", "n_violet", "sim");
  gb.AddEdge("n_olive", "n_violet", "sim");
  f.g = gb.TakeGraph();

  f.red_label = d->Lookup("red");
  f.blue_label = d->Lookup("blue");
  f.green_label = d->Lookup("green");
  return f;
}

}  // namespace test
}  // namespace osq

#endif  // OSQ_TESTS_TEST_UTIL_H_
