#include "graph/query_graph.h"

#include <gtest/gtest.h>

namespace osq {
namespace {

TEST(StringGraphBuilderTest, AddNodeInternsLabel) {
  LabelDictionary dict;
  StringGraphBuilder b(&dict);
  NodeId v = b.AddNode("n1", "museum");
  EXPECT_EQ(b.graph().NodeLabel(v), dict.Lookup("museum"));
}

TEST(StringGraphBuilderTest, AddNodeIdempotentByName) {
  LabelDictionary dict;
  StringGraphBuilder b(&dict);
  NodeId v1 = b.AddNode("n1", "a");
  NodeId v2 = b.AddNode("n1", "b");  // label change ignored
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(b.graph().num_nodes(), 1u);
  EXPECT_EQ(b.graph().NodeLabel(v1), dict.Lookup("a"));
}

TEST(StringGraphBuilderTest, NodeLabelDefaultsToName) {
  LabelDictionary dict;
  StringGraphBuilder b(&dict);
  NodeId v = b.AddNode("museum");
  EXPECT_EQ(b.graph().NodeLabel(v), dict.Lookup("museum"));
}

TEST(StringGraphBuilderTest, AddEdgeCreatesEndpoints) {
  LabelDictionary dict;
  StringGraphBuilder b(&dict);
  EXPECT_TRUE(b.AddEdge("a", "b", "rel"));
  EXPECT_EQ(b.graph().num_nodes(), 2u);
  EXPECT_TRUE(b.graph().HasEdge(b.NodeIdOf("a"), b.NodeIdOf("b"),
                                dict.Lookup("rel")));
}

TEST(StringGraphBuilderTest, DuplicateEdgeRejected) {
  LabelDictionary dict;
  StringGraphBuilder b(&dict);
  EXPECT_TRUE(b.AddEdge("a", "b", "rel"));
  EXPECT_FALSE(b.AddEdge("a", "b", "rel"));
}

TEST(StringGraphBuilderTest, NodeIdOfMissing) {
  LabelDictionary dict;
  StringGraphBuilder b(&dict);
  EXPECT_EQ(b.NodeIdOf("ghost"), kInvalidNode);
}

TEST(StringGraphBuilderTest, TakeGraphMovesOut) {
  LabelDictionary dict;
  StringGraphBuilder b(&dict);
  b.AddEdge("a", "b");
  Graph g = b.TakeGraph();
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(ValidateQueryTest, RejectsEmpty) {
  EXPECT_EQ(ValidateQuery(Graph()).code(), StatusCode::kInvalidArgument);
}

TEST(ValidateQueryTest, RejectsDisconnected) {
  Graph q;
  q.AddNodes(2, 0);  // no edges between them
  EXPECT_EQ(ValidateQuery(q).code(), StatusCode::kInvalidArgument);
}

TEST(ValidateQueryTest, AcceptsSingleNode) {
  Graph q;
  q.AddNode(0);
  EXPECT_TRUE(ValidateQuery(q).ok());
}

TEST(ValidateQueryTest, AcceptsConnected) {
  Graph q;
  q.AddNodes(3, 0);
  q.AddEdge(0, 1, 0);
  q.AddEdge(2, 1, 0);  // connected only weakly
  EXPECT_TRUE(ValidateQuery(q).ok());
}

}  // namespace
}  // namespace osq
