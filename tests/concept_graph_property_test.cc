// Randomized property tests for the concept-graph layer, parameterized
// over beta, edge-label awareness and generator seeds:
//   * Build() always yields a Validate()-clean partition covering V(G);
//   * the refinement fixpoint is idempotent — rebuilding from the final
//     partition (via FromPartition) changes nothing and stays valid;
//   * blocks never outnumber nodes, never undercut the concept label count
//     in use;
//   * RepairAfterEdge* keeps Validate() green across random update storms
//     and agrees with a batch rebuild at the query level (see also
//     property_test.cc P3).

#include <tuple>

#include <gtest/gtest.h>
#include "common/rng.h"
#include "core/concept_graph.h"
#include "gen/synthetic.h"
#include "ontology/ontology_partition.h"

namespace osq {
namespace {

struct World {
  LabelDictionary dict;
  Graph g;
  OntologyGraph o;
  SimilarityFunction sim{0.9};
};

World MakeWorld(uint64_t seed) {
  World w;
  gen::SyntheticGraphParams gp;
  gp.num_nodes = 120;
  gp.num_edges = 360;
  gp.num_labels = 20;
  gp.num_edge_labels = 2;
  gp.seed = seed;
  w.g = gen::MakeRandomGraph(gp, &w.dict);
  gen::SyntheticOntologyParams op;
  op.num_labels = 20;
  op.seed = seed + 1;
  w.o = gen::MakeTaxonomyOntology(op, &w.dict);
  return w;
}

class BuildPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double, bool>> {};

TEST_P(BuildPropertyTest, BuildValidatesAndCovers) {
  auto [seed, beta, aware] = GetParam();
  World w = MakeWorld(seed);
  Rng rng(seed + 5);
  std::vector<LabelId> concepts =
      SelectConceptLabels(w.o, w.sim, beta, 4, &rng);
  ASSERT_TRUE(CoversAllLabels(w.o, w.sim, beta, concepts));

  ConceptGraphOptions options;
  options.beta = beta;
  options.edge_label_aware = aware;
  ConceptGraphStats stats;
  ConceptGraph cg =
      ConceptGraph::Build(w.g, w.o, w.sim, options, concepts, &stats);

  EXPECT_TRUE(cg.Validate());
  EXPECT_LE(cg.num_blocks(), w.g.num_nodes());
  EXPECT_GE(stats.final_blocks, stats.initial_blocks);
  // Every node is in a live block labeled similarly enough.
  for (NodeId v = 0; v < w.g.num_nodes(); ++v) {
    BlockId b = cg.BlockOf(v);
    ASSERT_TRUE(cg.IsAlive(b));
    EXPECT_TRUE(w.sim.AtLeast(w.o, w.g.NodeLabel(v), cg.BlockLabel(b), beta));
  }
}

TEST_P(BuildPropertyTest, FixpointIsIdempotent) {
  auto [seed, beta, aware] = GetParam();
  World w = MakeWorld(seed);
  Rng rng(seed + 6);
  std::vector<LabelId> concepts =
      SelectConceptLabels(w.o, w.sim, beta, 4, &rng);
  ConceptGraphOptions options;
  options.beta = beta;
  options.edge_label_aware = aware;
  ConceptGraph cg = ConceptGraph::Build(w.g, w.o, w.sim, options, concepts);

  // Export the stable partition and reconstruct: must validate as-is.
  std::vector<std::pair<LabelId, std::vector<NodeId>>> blocks;
  for (BlockId b : cg.AliveBlocks()) {
    blocks.push_back({cg.BlockLabel(b), cg.Members(b)});
  }
  ConceptGraph restored = ConceptGraph::FromPartition(
      w.g, w.o, w.sim, options, cg.concept_labels(), blocks);
  EXPECT_TRUE(restored.Validate());
  EXPECT_EQ(restored.num_blocks(), cg.num_blocks());
}

TEST_P(BuildPropertyTest, EdgeAwareRefinesLabelUnaware) {
  auto [seed, beta, aware] = GetParam();
  if (aware) GTEST_SKIP() << "comparison baseline only";
  World w = MakeWorld(seed);
  Rng rng(seed + 7);
  std::vector<LabelId> concepts =
      SelectConceptLabels(w.o, w.sim, beta, 4, &rng);
  ConceptGraphOptions unaware;
  unaware.beta = beta;
  ConceptGraphOptions aware_opt;
  aware_opt.beta = beta;
  aware_opt.edge_label_aware = true;
  ConceptGraph cu = ConceptGraph::Build(w.g, w.o, w.sim, unaware, concepts);
  ConceptGraph ca = ConceptGraph::Build(w.g, w.o, w.sim, aware_opt, concepts);
  // The label-aware partition refines the unaware one: never fewer blocks,
  // and nodes separated by the unaware build stay separated.
  EXPECT_GE(ca.num_blocks(), cu.num_blocks());
  for (NodeId v = 0; v < w.g.num_nodes(); ++v) {
    for (NodeId u = v + 1; u < w.g.num_nodes(); ++u) {
      if (ca.BlockOf(v) == ca.BlockOf(u)) {
        EXPECT_EQ(cu.BlockOf(v), cu.BlockOf(u));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BuildPropertyTest,
    ::testing::Combine(::testing::Values(101u, 102u, 103u),
                       ::testing::Values(0.9, 0.81, 0.729),
                       ::testing::Bool()));

class RepairStormTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RepairStormTest, RepairsStayValidUnderRandomStorm) {
  uint64_t seed = GetParam();
  World w = MakeWorld(seed);
  Rng rng(seed + 11);
  std::vector<LabelId> concepts =
      SelectConceptLabels(w.o, w.sim, 0.81, 4, &rng);
  ConceptGraphOptions options;
  options.beta = 0.81;
  ConceptGraph cg = ConceptGraph::Build(w.g, w.o, w.sim, options, concepts);

  for (int step = 0; step < 150; ++step) {
    NodeId u = static_cast<NodeId>(rng.Index(w.g.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.Index(w.g.num_nodes()));
    if (u == v) continue;
    LabelId el = static_cast<LabelId>(rng.Index(2));
    if (rng.Bernoulli(0.5)) {
      if (w.g.AddEdge(u, v, el)) {
        cg.RepairAfterEdgeInsertion(u, v);
      }
    } else {
      if (w.g.RemoveEdge(u, v, el)) {
        cg.RepairAfterEdgeDeletion(u, v);
      }
    }
    if (step % 25 == 0) {
      ASSERT_TRUE(cg.Validate()) << "step " << step;
    }
  }
  EXPECT_TRUE(cg.Validate());
  // Block count within [concepts-in-use, |V|].
  EXPECT_LE(cg.num_blocks(), w.g.num_nodes());
}

INSTANTIATE_TEST_SUITE_P(Sweep, RepairStormTest,
                         ::testing::Values(201u, 202u, 203u, 204u));

}  // namespace
}  // namespace osq
