// Knowledge-graph search over a CrossDomain-like heterogeneous dataset:
// generates the synthetic RDF-style graph, extracts generalized query
// patterns, and contrasts identical-label matching (SubIso) with
// ontology-based top-K querying — the Table I effectiveness story at
// example scale.

#include <cstdio>
#include <utility>

#include "baseline/subiso.h"
#include "core/query_engine.h"
#include "gen/query_gen.h"
#include "gen/scenarios.h"

int main() {
  using namespace osq;

  gen::ScenarioParams params;
  params.scale = 3000;
  params.seed = 2024;
  gen::Dataset ds = gen::MakeCrossDomainLike(params);
  std::printf("CrossDomain-like graph: %zu nodes, %zu edges; ontology: %zu "
              "concepts, %zu relations\n",
              ds.graph.num_nodes(), ds.graph.num_edges(),
              ds.ontology.num_labels(), ds.ontology.num_relations());

  // Extract a handful of generalized patterns before handing the graphs to
  // the engine.
  Rng rng(7);
  gen::QueryGenParams qp;
  qp.num_nodes = 4;
  qp.generalize_prob = 0.7;
  qp.generalize_hops = 1;
  std::vector<Graph> queries;
  while (queries.size() < 5) {
    Graph q = gen::ExtractQuery(ds.graph, ds.ontology, qp, &rng);
    if (!q.empty()) queries.push_back(std::move(q));
  }

  Graph g_copy = ds.graph;  // SubIso runs against the original graph
  IndexOptions idx;
  idx.num_concept_graphs = 2;
  QueryEngine engine(std::move(ds.graph), std::move(ds.ontology), idx);
  std::printf("index built in %.1f ms (%zu blocks total)\n\n",
              engine.index_build_ms(), engine.build_stats().total_blocks);

  std::printf("%-6s %10s %14s %10s %12s\n", "query", "SubIso", "OSQ(0.9)",
              "best", "Gv nodes");
  for (size_t i = 0; i < queries.size(); ++i) {
    size_t iso = SubIso(queries[i], g_copy, MatchSemantics::kInduced).size();
    QueryOptions options;
    options.theta = 0.9;
    options.k = 10;
    QueryResult r = engine.Query(queries[i], options);
    std::printf("Q%-5zu %10zu %14zu %10.2f %12zu\n", i + 1, iso,
                r.matches.size(),
                r.matches.empty() ? 0.0 : r.matches[0].score,
                r.filter_stats.gv_nodes);
  }
  std::printf("\nOSQ finds semantically close matches the identical-label "
              "baseline misses.\n");
  return 0;
}
