// Dynamic data graphs (paper §VI): stream edge insertions and deletions
// through the engine, which repairs the ontology index incrementally
// (never rebuilding), and re-evaluate a standing query after each batch.

#include <cstdio>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "core/query_engine.h"
#include "gen/query_gen.h"
#include "gen/scenarios.h"

int main() {
  using namespace osq;

  gen::ScenarioParams params;
  params.scale = 1500;
  params.seed = 9;
  gen::Dataset ds = gen::MakeFlickrLike(params);
  std::printf("Flickr-like graph: %zu nodes, %zu edges\n",
              ds.graph.num_nodes(), ds.graph.num_edges());

  // Standing query: a 3-node pattern extracted from the initial graph.
  Rng rng(17);
  gen::QueryGenParams qp;
  qp.num_nodes = 3;
  qp.generalize_prob = 0.5;
  Graph query;
  while (query.empty()) {
    query = gen::ExtractQuery(ds.graph, ds.ontology, qp, &rng);
  }

  size_t num_nodes = ds.graph.num_nodes();
  std::vector<EdgeTriple> original_edges = ds.graph.EdgeList();

  IndexOptions idx;
  idx.num_concept_graphs = 2;
  QueryEngine engine(std::move(ds.graph), std::move(ds.ontology), idx);
  std::printf("index built in %.1f ms\n\n", engine.index_build_ms());

  QueryOptions options;
  options.theta = 0.81;
  options.k = 5;

  std::printf("%-8s %10s %10s %10s %12s %10s\n", "batch", "applied",
              "AFF", "repair_ms", "matches", "best");
  for (int batch = 0; batch < 5; ++batch) {
    // Mixed update batch: random insertions plus deletions of known edges.
    std::vector<GraphUpdate> updates;
    for (int i = 0; i < 40; ++i) {
      NodeId u = static_cast<NodeId>(rng.Index(num_nodes));
      NodeId v = static_cast<NodeId>(rng.Index(num_nodes));
      if (u == v) continue;
      if (rng.Bernoulli(0.5) && !original_edges.empty()) {
        const EdgeTriple& e = original_edges[rng.Index(original_edges.size())];
        updates.push_back(GraphUpdate::Delete(e.from, e.to, e.label));
      } else {
        updates.push_back(GraphUpdate::Insert(u, v, 0));
      }
    }
    WallTimer timer;
    MaintenanceStats stats = engine.ApplyUpdates(updates);
    double repair_ms = timer.ElapsedMillis();

    QueryResult r = engine.Query(query, options);
    std::printf("%-8d %10zu %10zu %10.2f %12zu %10.2f\n", batch + 1,
                stats.applied, stats.aff_blocks, repair_ms,
                r.matches.size(),
                r.matches.empty() ? 0.0 : r.matches[0].score);
  }
  std::printf("\nindex still valid: %s\n",
              engine.index().Validate() ? "yes" : "NO (bug!)");
  return 0;
}
