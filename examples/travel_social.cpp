// The paper's running example (Figures 1-2, Examples I.1-II.2): querying a
// social travel network for "tourists who recommend museum tours with guide
// services and favor a restaurant named moonlight near the museum".
//
// Traditional subgraph isomorphism finds nothing — no node in the network
// is labeled museum, tourists or moonlight.  Ontology-based querying finds
// the Royal Gallery / Culture Tours / Starlight triangle with score 2.7,
// and at a lower threshold also the Disneyland / Holiday Tours / Holiday
// Cafe triangle (score 2.61), ranked below it.

#include <cstdio>
#include <string>

#include "baseline/subiso.h"
#include "core/query_engine.h"
#include "graph/query_graph.h"

int main() {
  using namespace osq;
  LabelDictionary dict;

  // Travel ontology O_g (Fig. 2).
  OntologyGraph ontology;
  auto rel = [&](const std::string& a, const std::string& b) {
    ontology.AddRelation(dict.Intern(a), dict.Intern(b));
  };
  rel("museum", "royal_gallery");
  rel("museum", "attractions");
  rel("museum", "park");
  rel("park", "disneyland");
  rel("attractions", "park");
  rel("tourists", "culture_tours");
  rel("tourists", "holiday_tours");
  rel("moonlight", "starlight");
  rel("moonlight", "holiday_cafe");
  rel("moonlight", "holiday_plaza");
  rel("leisure_center", "holiday_plaza");
  rel("leisure_center", "royal_palace");

  // Travel social network G (Fig. 1).
  StringGraphBuilder data(&dict);
  data.AddEdge("culture_tours", "royal_gallery", "guide");
  data.AddEdge("culture_tours", "starlight", "fav");
  data.AddEdge("starlight", "royal_gallery", "near");
  data.AddEdge("holiday_tours", "disneyland", "guide");
  data.AddEdge("holiday_tours", "holiday_cafe", "fav");
  data.AddEdge("holiday_cafe", "disneyland", "near");
  data.AddEdge("holiday_plaza", "disneyland", "near");
  data.AddEdge("royal_palace", "royal_gallery", "near");

  // Query Q (Fig. 1).
  StringGraphBuilder qb(&dict);
  qb.AddNode("q_tourists", "tourists");
  qb.AddNode("q_museum", "museum");
  qb.AddNode("q_moonlight", "moonlight");
  qb.AddEdge("q_tourists", "q_museum", "guide");
  qb.AddEdge("q_tourists", "q_moonlight", "fav");
  qb.AddEdge("q_moonlight", "q_museum", "near");
  Graph query = qb.TakeGraph();

  Graph g = data.TakeGraph();
  std::printf("data graph: %zu nodes, %zu edges\n", g.num_nodes(),
              g.num_edges());

  // Traditional subgraph isomorphism (Example I.1): nothing.
  std::printf("SubIso (identical labels): %zu matches\n",
              SubIso(query, g, MatchSemantics::kInduced).size());

  // Ontology-based querying.
  QueryEngine engine(std::move(g), std::move(ontology), IndexOptions{});
  auto describe = [&](NodeId v) {
    return dict.Name(engine.graph().NodeLabel(v));
  };
  for (double theta : {0.9, 0.81}) {
    QueryOptions options;
    options.theta = theta;
    options.k = 10;
    QueryResult r = engine.Query(query, options);
    std::printf("\nontology-based querying, theta = %.2f -> %zu match(es)\n",
                theta, r.matches.size());
    for (const Match& m : r.matches) {
      std::printf("  score %.2f:  tourists=%s museum=%s moonlight=%s\n",
                  m.score, describe(m.mapping[0]).c_str(),
                  describe(m.mapping[1]).c_str(),
                  describe(m.mapping[2]).c_str());
    }
    std::printf("  G_v: %zu nodes / %zu edges; filter %.3f ms, verify %.3f ms\n",
                r.filter_stats.gv_nodes, r.filter_stats.gv_edges, r.filter_ms,
                r.verify_ms);
  }
  return 0;
}
