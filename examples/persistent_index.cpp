// Persistent-index workflow (paper §III: the index is "computed once for
// all"): generate a dataset, save graph + ontology + index to disk, then
// reload everything in a fresh "process" and answer pattern queries —
// the startup path of a long-lived deployment.

#include <cstdio>
#include <string>

#include "common/timer.h"
#include "core/filtering.h"
#include "core/index_io.h"
#include "core/kmatch.h"
#include "gen/scenarios.h"
#include "graph/graph_io.h"
#include "query/pattern_parser.h"

int main() {
  using namespace osq;
  const std::string dir = "/tmp";
  const std::string graph_path = dir + "/osq_example.graph";
  const std::string ontology_path = dir + "/osq_example.ontology";
  const std::string index_path = dir + "/osq_example.index";

  // --- "ingest" phase: build everything once and persist it. ---
  {
    gen::ScenarioParams params;
    params.scale = 4000;
    params.seed = 11;
    gen::Dataset ds = gen::MakeCrossDomainLike(params);
    IndexOptions idx;
    idx.num_concept_graphs = 2;
    WallTimer timer;
    OntologyIndex index = OntologyIndex::Build(ds.graph, ds.ontology, idx);
    std::printf("ingest: built index in %.1f ms (|I|=%zu)\n",
                timer.ElapsedMillis(), index.TotalSize());

    if (!SaveGraphToFile(ds.graph, ds.dict, graph_path).ok() ||
        !SaveOntology(ds.ontology, ds.dict, ontology_path).ok() ||
        !SaveIndexToFile(index, ds.dict, index_path).ok()) {
      std::printf("persist failed\n");
      return 1;
    }
    std::printf("ingest: persisted graph, ontology and index under %s\n",
                dir.c_str());
  }

  // --- "serve" phase: fresh state, load from disk, query. ---
  {
    LabelDictionary dict;
    Graph g;
    OntologyGraph o;
    Status s = LoadGraphFromFile(graph_path, &dict, &g);
    if (s.ok()) s = LoadOntologyFromFile(ontology_path, &dict, &o);
    if (!s.ok()) {
      std::printf("load failed: %s\n", s.ToString().c_str());
      return 1;
    }
    WallTimer timer;
    OntologyIndex index = OntologyIndex::Build(g, o, IndexOptions{});
    double rebuild_ms = timer.ElapsedMillis();
    timer.Restart();
    s = LoadIndexFromFile(index_path, g, o, &dict, &index);
    double load_ms = timer.ElapsedMillis();
    if (!s.ok()) {
      std::printf("index load failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("serve: index loaded in %.1f ms (rebuild would be %.1f ms); "
                "valid=%s\n",
                load_ms, rebuild_ms, index.Validate() ? "yes" : "no");

    ParsedPattern pattern;
    s = ParsePattern("(a:person)-[born_in]->(b:place)", &dict, &pattern);
    if (!s.ok()) {
      std::printf("pattern error: %s\n", s.ToString().c_str());
      return 1;
    }
    QueryOptions options;
    options.theta = 0.8;
    options.k = 3;
    FilterResult filter = GviewFilter(index, pattern.query, options);
    std::vector<Match> matches = KMatch(pattern.query, filter, options);
    std::printf("serve: %zu match(es) for (a:person)-[born_in]->(b:place)\n",
                matches.size());
    for (const Match& m : matches) {
      std::printf("  score %.3f: a=%s b=%s\n", m.score,
                  dict.Name(g.NodeLabel(m.mapping[0])).c_str(),
                  dict.Name(g.NodeLabel(m.mapping[1])).c_str());
    }
  }
  return 0;
}
