// Quickstart: build a tiny labeled graph and an ontology, then run an
// ontology-based subgraph query through the QueryEngine.
//
//   cmake --build build && ./build/examples/quickstart
//
// The query asks for a "scientist" who "wrote" a "book".  The data graph
// contains no node labeled scientist or book — but it does contain a
// physicist who wrote a monograph, and the ontology knows that a physicist
// is a kind of scientist and a monograph is a kind of book.

#include <cstdio>

#include "core/query_engine.h"
#include "graph/query_graph.h"

int main() {
  using namespace osq;

  // 1. One dictionary shared by the data graph, ontology and queries.
  LabelDictionary dict;

  // 2. The data graph: entities and typed relationships.
  StringGraphBuilder data(&dict);
  data.AddNode("einstein", "physicist");
  data.AddNode("relativity", "monograph");
  data.AddNode("darwin", "biologist");
  data.AddNode("origin", "monograph");
  data.AddNode("hamlet", "play");
  data.AddNode("shakespeare", "playwright");
  data.AddEdge("einstein", "relativity", "wrote");
  data.AddEdge("darwin", "origin", "wrote");
  data.AddEdge("shakespeare", "hamlet", "wrote");

  // 3. The ontology graph: semantic closeness between labels.
  OntologyGraph ontology;
  auto rel = [&](const char* a, const char* b) {
    ontology.AddRelation(dict.Intern(a), dict.Intern(b));
  };
  rel("scientist", "physicist");
  rel("scientist", "biologist");
  rel("author", "scientist");
  rel("author", "playwright");
  rel("book", "monograph");
  rel("book", "play");

  // 4. The query: scientist -wrote-> book (no identical labels in G!).
  StringGraphBuilder query(&dict);
  query.AddNode("who", "scientist");
  query.AddNode("what", "book");
  query.AddEdge("who", "what", "wrote");

  // 5. Build the engine (constructs the ontology index) and query.
  QueryEngine engine(data.TakeGraph(), std::move(ontology), IndexOptions{});
  QueryOptions options;
  options.theta = 0.9;  // accept labels within one ontology hop
  options.k = 10;
  QueryResult result = engine.Query(query.graph(), options);
  if (!result.status.ok()) {
    std::printf("query rejected: %s\n", result.status.ToString().c_str());
    return 1;
  }

  std::printf("top-%zu matches (theta = %.2f):\n", options.k, options.theta);
  const char* names[] = {"einstein", "relativity", "darwin",
                         "origin",   "hamlet",     "shakespeare"};
  for (const Match& m : result.matches) {
    std::printf("  score %.3f:  who -> %-12s what -> %s\n", m.score,
                names[m.mapping[query.NodeIdOf("who")]],
                names[m.mapping[query.NodeIdOf("what")]]);
  }
  std::printf("filter extracted G_v with %zu nodes / %zu edges (of %zu/%zu)\n",
              result.filter_stats.gv_nodes, result.filter_stats.gv_edges,
              engine.graph().num_nodes(), engine.graph().num_edges());
  return 0;
}
